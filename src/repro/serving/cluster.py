"""Multi-process sharded serving: N warmed engine workers behind one front end.

The in-process :class:`~repro.serving.server.InferenceServer` batches well,
but its NumPy forwards hold the GIL, so one process caps throughput no
matter how many cores the host has.  :class:`ShardedServer` shards requests
across N **worker processes**, each hosting its own warmed
:class:`~repro.serving.engine.InferenceEngine` over a frozen ``.npz``
checkpoint, so forwards run truly in parallel.

Topology::

    client threads
        |  submit(request, model=..., deadline_ms=...)
    ShardedServer          (admission control, routing, cluster stats)
        |  per-shard InferenceServer  (micro-batching + fault semantics)
        |       |  RemoteEngine.predict(batch)
        |       |       |-- control header ---- multiprocessing.Pipe ---.
        |       |       '-- batch bytes ------- ShmRing (shared memory) -+--> worker
        |       |                                                        |   process
        |       |<------ output bytes --------- ShmRing <----------------'
        shard 0 ... shard N-1

Every shard is a full :class:`InferenceServer` whose "engine" is a
:class:`RemoteEngine` proxy, so **all of the single-process fault semantics
apply unchanged across the process boundary**: per-request deadlines,
queue shedding, poison-batch bisection with bounded solo retries, and
engine supervision.  A worker process that dies mid-batch surfaces as an
:class:`~repro.serving.engine.EngineCrash` -- the in-flight requests fail
descriptively, the shard goes degraded, and the supervisor's ``rewarm()``
call *respawns and re-warms a fresh worker process* (bounded by
``engine_restart_limit``).  While a shard is degraded or failed, routing
skips it, so the shard map rebalances around dead workers.

Batch payloads cross the process boundary through shared-memory slot rings
(:class:`~repro.serving.transport.ShmRing`): one memcpy into the mapped
segment on the sending side, a zero-copy NumPy view on the receiving side,
and only a tiny control header through the pipe.  Payloads larger than a
ring slot fall back to pickling over the pipe (counted in
``stats().oversized_transfers``); correctness never depends on slot size.

Routing supports ``round_robin`` and ``least_loaded`` (fewest unresolved
requests), and the cluster can host **multiple model families** at once
(one checkpoint per :class:`WorkerSpec`; ``submit(model="name")`` selects
the family).  Variable-length token requests additionally get per-bucket
shard affinity: every request padded to the same bucket length lands on
the same shard, so padding locality (and the worker's batch-shape caches)
survive sharding.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import observability
from ..observability.metrics import LatencyHistogram
from .engine import EngineCrash, EngineStats, InferenceEngine
from .faults import FaultInjectingEngine, FaultPlan, TransientEngineError
from .server import (
    BatchingConfig,
    InferenceServer,
    InvalidRequest,
    ServerClosed,
    ServerOverloaded,
    ServerStats,
    ServerUnavailable,
    ServingError,
    validate_payload,
)
from .transport import ShmRing

__all__ = [
    "WorkerSpec",
    "ClusterConfig",
    "WorkerStartupError",
    "RemoteEngineError",
    "RemoteEngine",
    "ShardedServer",
]


class WorkerStartupError(RuntimeError):
    """A worker process failed to load/warm its engine at spawn time."""


class RemoteEngineError(ServingError):
    """A worker-side batch failure whose exception type could not be
    reconstructed in the front-end process (message preserved)."""


#: Worker-side exception types that are reconstructed by name in the front
#: end, so the per-shard server's isolation logic sees the same classes it
#: would in-process.  Anything else becomes :class:`RemoteEngineError`.
_REBUILDABLE_ERRORS = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "RuntimeError": RuntimeError,
    "FloatingPointError": FloatingPointError,
    "ZeroDivisionError": ZeroDivisionError,
    "TransientEngineError": TransientEngineError,
    "ServingError": ServingError,
}


def _rebuild_error(type_name: str, message: str) -> BaseException:
    error_type = _REBUILDABLE_ERRORS.get(type_name)
    if error_type is None:
        return RemoteEngineError(f"{type_name}: {message}")
    try:
        return error_type(message)
    except Exception:  # noqa: BLE001 - exotic constructor signature
        return RemoteEngineError(f"{type_name}: {message}")


@dataclass(frozen=True)
class WorkerSpec:
    """One engine worker: which checkpoint it serves and how it warms up.

    Parameters
    ----------
    checkpoint:
        Path to a frozen ``.npz`` export (:func:`repro.serving.save_frozen`).
        The worker process loads it with :func:`repro.serving.load_frozen`,
        so the parent never ships model weights through pickling.
    model:
        Family label used for routing (``submit(model=...)``).  Multiple
        specs may share a label; they become that family's shard group.
    warmup_shapes:
        Full batch shapes (leading batch dim included) the worker forwards
        once at startup -- and again on every respawn -- so index/layout
        caches are primed before the shard serves traffic.
    warmup_dtype:
        Dtype of the synthetic warmup batches.
    cast_dtype:
        Optional serving dtype cast applied after load (e.g. ``"float32"``,
        the production serving mode).
    fault_plan:
        Optional deterministic :class:`~repro.serving.faults.FaultPlan`
        wrapped around the worker's engine (chaos testing).  A
        ``worker_exit`` fault in the plan kills the worker process
        mid-batch via ``os._exit``.
    fault_plan_on_respawn:
        Whether a respawned worker re-applies ``fault_plan``.  Off by
        default so a scheduled ``worker_exit`` does not re-fire at the same
        call index in every fresh worker (which would turn one injected
        death into an unrecoverable crash loop).
    env:
        Environment overrides applied to the worker process (set around
        spawn, inherited by the child -- e.g. BLAS thread pinning:
        ``{"OMP_NUM_THREADS": "1"}``).
    """

    checkpoint: str
    model: str = "default"
    warmup_shapes: Tuple[Tuple[int, ...], ...] = ()
    warmup_dtype: str = "float64"
    cast_dtype: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None
    fault_plan_on_respawn: bool = False
    env: Optional[Tuple[Tuple[str, str], ...]] = None

    def __post_init__(self):
        object.__setattr__(self, "checkpoint", str(self.checkpoint))
        object.__setattr__(self, "warmup_shapes",
                           tuple(tuple(int(d) for d in shape)
                                 for shape in self.warmup_shapes))
        if self.env is not None and not isinstance(self.env, tuple):
            object.__setattr__(self, "env",
                               tuple(sorted(dict(self.env).items())))


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the sharded serving tier.

    Parameters
    ----------
    batching:
        Per-shard :class:`~repro.serving.server.BatchingConfig`.  Its
        ``max_queue_depth`` is ignored -- admission control is cluster-wide
        (see ``max_queue_depth`` below) so one overloaded shard cannot
        reject traffic the cluster could still serve.
    routing:
        ``"round_robin"`` (default) or ``"least_loaded"`` (fewest
        unresolved requests).  Token requests with configured pad buckets
        override both with per-bucket shard affinity.
    max_queue_depth / admission_policy / block_timeout_ms:
        Cluster-wide admission control, same semantics as the in-process
        server: ``"reject"`` raises
        :class:`~repro.serving.server.ServerOverloaded` at capacity,
        ``"block"`` waits up to ``block_timeout_ms`` first.
    slot_size / ring_slots:
        Geometry of each worker's request/response shared-memory rings.
        Payloads above ``slot_size`` fall back to pickling over the pipe.
    spawn_timeout_s:
        How long to wait for a worker to load + warm up (at startup and on
        every respawn) before declaring the spawn failed.
    request_timeout_s:
        How long a shard waits for a worker to answer one batch before
        declaring the worker wedged, killing it, and treating the batch as
        an :class:`~repro.serving.engine.EngineCrash` (which triggers the
        supervised respawn path).
    mp_context:
        ``multiprocessing`` start method.  ``"spawn"`` is the default:
        the front end is multi-threaded, and forking a threaded process
        is a latent deadlock.
    """

    batching: BatchingConfig = field(default_factory=BatchingConfig)
    routing: str = "round_robin"
    max_queue_depth: Optional[int] = None
    admission_policy: str = "reject"
    block_timeout_ms: float = 1000.0
    slot_size: int = 1 << 20
    ring_slots: int = 4
    spawn_timeout_s: float = 120.0
    request_timeout_s: float = 120.0
    mp_context: str = "spawn"

    def __post_init__(self):
        if self.routing not in ("round_robin", "least_loaded"):
            raise ValueError("routing must be 'round_robin' or 'least_loaded'")
        if self.admission_policy not in ("reject", "block"):
            raise ValueError("admission_policy must be 'reject' or 'block'")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if self.slot_size < 1 or self.ring_slots < 1:
            raise ValueError("slot_size and ring_slots must be >= 1")


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _worker_main(spec: WorkerSpec, conn, req_ring_name: str, resp_ring_name: str,
                 slot_size: int, ring_slots: int, generation: int,
                 telemetry: bool = False) -> None:
    """Engine worker: load the frozen checkpoint, warm up, serve batches.

    Protocol (control messages over ``conn``; array bytes through the
    rings):

    * parent -> worker: ``("batch", req_id, slot, shape, dtype)``,
      ``("batch_pickled", req_id, array)``, ``("free", slot)`` (a response
      slot the parent is done with), ``("rewarm",)``, ``("stop",)``.
    * worker -> parent: ``("ready", pid, warmup_seconds)``,
      ``("startup_failed", message)``,
      ``("result", req_id, slot, shape, dtype, req_slot, telemetry)``,
      ``("result_pickled", req_id, array, req_slot, telemetry)``,
      ``("error", req_id, kind, type_name, message, req_slot, telemetry)``
      with ``kind`` in ``{"crash", "batch"}``, ``("rewarmed", seconds)``,
      ``("rewarm_failed", message)``.

    ``req_slot`` rides along on every reply so the parent can return the
    request's ring slot to its free list exactly when the worker no longer
    reads from it.  ``telemetry`` is ``None`` when observability was off at
    spawn time; otherwise a dict with the worker's metric delta since the
    previous reply (``"metrics"``), its drained trace spans (``"spans"``),
    and the batch's engine-only compute time (``"compute_ms"``) so the
    parent can attribute the rest of the round-trip to transport.
    """
    # The request ring is parent-produced (this side only views); the
    # response ring is produced here, so this side owns its free list.
    req_ring = ShmRing.attach(req_ring_name, slot_size, ring_slots)
    resp_ring = ShmRing.attach(resp_ring_name, slot_size, ring_slots)
    if telemetry:
        # Fresh spawn-context process: arm this worker's own registry and
        # kernel hooks so metric deltas/spans can piggyback on replies.
        observability.set_enabled(True)

    def _collect_telemetry(compute_ms: Optional[float]):
        if not telemetry:
            return None
        tracer = observability.tracer()
        return {
            "metrics": observability.registry().collect_delta(),
            "spans": tracer.drain() if tracer.armed else [],
            "compute_ms": compute_ms,
        }
    try:
        from .checkpoint import load_frozen  # deferred: spawn imports lazily

        frozen = load_frozen(spec.checkpoint)
        if spec.cast_dtype is not None:
            frozen.cast(np.dtype(spec.cast_dtype))
        engine = InferenceEngine(frozen)
        if spec.fault_plan is not None and (generation == 0 or spec.fault_plan_on_respawn):
            engine = FaultInjectingEngine(engine, spec.fault_plan)
        warmup_seconds = 0.0
        warmup_dtype = np.dtype(spec.warmup_dtype)
        for shape in spec.warmup_shapes:
            warmup_seconds += engine.warmup(np.zeros(shape, dtype=warmup_dtype))
        conn.send(("ready", os.getpid(), warmup_seconds))
    except BaseException as error:  # noqa: BLE001 - report, then exit
        try:
            conn.send(("startup_failed", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
        return

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # the front end went away; nothing left to serve
            kind = message[0]
            if kind == "stop":
                break
            if kind == "free":
                resp_ring.release(message[1])
                continue
            if kind == "rewarm":
                try:
                    conn.send(("rewarmed", engine.rewarm()))
                except BaseException as error:  # noqa: BLE001 - still down
                    conn.send(("rewarm_failed", f"{type(error).__name__}: {error}"))
                continue
            if kind == "batch":
                _, req_id, slot, shape, dtype = message
                batch = req_ring.view(slot, shape, dtype)  # zero-copy
                req_slot: Optional[int] = slot
            elif kind == "batch_pickled":
                _, req_id, batch = message
                req_slot = None
            else:
                continue  # unknown message: ignore, stay alive
            compute_started = time.monotonic()
            try:
                outputs = np.ascontiguousarray(engine.predict(batch))
            except EngineCrash as error:
                conn.send(("error", req_id, "crash", "EngineCrash", str(error),
                           req_slot, _collect_telemetry(None)))
                continue
            except Exception as error:  # noqa: BLE001 - per-batch failure
                conn.send(("error", req_id, "batch", type(error).__name__,
                           str(error), req_slot, _collect_telemetry(None)))
                continue
            compute_done = time.monotonic()
            if telemetry:
                tracer = observability.active_tracer()
                if tracer is not None and tracer.armed:
                    # CLOCK_MONOTONIC is system-wide on Linux, so this span
                    # lines up with the parent's timeline; the worker pid
                    # keeps it on its own track in the trace viewer.
                    tracer.add_event("compute", compute_started,
                                     compute_done - compute_started,
                                     args={"model": spec.model,
                                           "generation": generation,
                                           "batch_size": int(np.asarray(batch).shape[0])})
            compute_ms = (compute_done - compute_started) * 1e3
            out_slot = resp_ring.acquire() if resp_ring.fits(outputs.nbytes) else None
            if out_slot is not None:
                shape, dtype = resp_ring.write(out_slot, outputs)
                conn.send(("result", req_id, out_slot, shape, dtype, req_slot,
                           _collect_telemetry(compute_ms)))
            else:
                conn.send(("result_pickled", req_id, outputs, req_slot,
                           _collect_telemetry(compute_ms)))
    finally:
        req_ring.close()
        resp_ring.close()


# --------------------------------------------------------------------------- #
# Front-end proxy for one worker
# --------------------------------------------------------------------------- #
_SPAWN_ENV_LOCK = threading.Lock()


class RemoteEngine:
    """Engine-protocol proxy for one worker process.

    Exposes ``predict`` / ``rewarm`` / ``warmed_up`` / ``stats`` exactly
    like :class:`~repro.serving.engine.InferenceEngine`, so it drops into
    an :class:`~repro.serving.server.InferenceServer` unchanged -- that is
    how the single-process fault semantics extend across the process
    boundary.  Failure mapping:

    * worker reports a per-batch exception -> the same exception type (or
      :class:`RemoteEngineError`) raises here, feeding the server's
      poison-isolation/bisection path;
    * worker reports an engine crash, dies mid-batch, or stops answering
      (``request_timeout_s``) -> :class:`EngineCrash` raises here, feeding
      the server's supervision path; the supervisor's ``rewarm()`` either
      rewarms the live worker or **respawns and re-warms a fresh process**.
    """

    def __init__(self, spec: WorkerSpec, config: Optional[ClusterConfig] = None):
        self.spec = spec
        self.config = config if config is not None else ClusterConfig()
        self._ctx = multiprocessing.get_context(self.config.mp_context)
        #: Extra labels stamped onto worker metric deltas when they are
        #: merged into this process's registry (set by ShardedServer).
        self.telemetry_labels: Dict[str, str] = {}
        self._req_id = itertools.count(1)
        # _lock serializes the whole predict/rewarm/shutdown round-trip;
        # _stats_lock guards the cheap counters below so stats() and the
        # public read-only properties never block behind an in-flight
        # batch.  Order: _lock -> _stats_lock, never the reverse.
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._closed = False  # guarded-by: _stats_lock
        self._generation = 0  # guarded-by: _stats_lock
        self._respawns = 0  # guarded-by: _stats_lock
        self._oversized_transfers = 0  # guarded-by: _stats_lock
        self._warmed_up = False  # guarded-by: _stats_lock
        self._warmup_seconds = 0.0  # guarded-by: _stats_lock
        # Transport share of the last predict() round-trip (round-trip
        # minus the worker-reported compute time), or None when the worker
        # ships no telemetry.  Read by InferenceServer for RequestTiming.
        self._last_transport_ms: Optional[float] = None  # guarded-by: _stats_lock
        with self._lock:
            self._spawn_locked()

    # -------------------------------------------------------------- #
    # Read-only views of the mutable counters (consistent snapshots for
    # ShardedServer.stats() and the supervisor, never blocking on _lock)
    # -------------------------------------------------------------- #
    @property
    def generation(self) -> int:
        with self._stats_lock:
            return self._generation

    @property
    def respawns(self) -> int:
        with self._stats_lock:
            return self._respawns

    @property
    def oversized_transfers(self) -> int:
        with self._stats_lock:
            return self._oversized_transfers

    @property
    def warmed_up(self) -> bool:
        with self._stats_lock:
            return self._warmed_up

    @property
    def warmup_seconds(self) -> float:
        with self._stats_lock:
            return self._warmup_seconds

    @property
    def last_transport_ms(self) -> Optional[float]:
        with self._stats_lock:
            return self._last_transport_ms

    # -------------------------------------------------------------- #
    # Process lifecycle
    # -------------------------------------------------------------- #
    def _spawn_locked(self) -> None:
        config = self.config
        self._req_ring = ShmRing(config.slot_size, config.ring_slots)
        self._resp_ring = ShmRing(config.slot_size, config.ring_slots)
        self._conn, child_conn = self._ctx.Pipe()
        # Telemetry enablement is latched at (re)spawn time: a worker ships
        # deltas iff the global gate was on when its process started.
        self._telemetry = observability.enabled()
        with self._stats_lock:
            generation = self._generation
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.spec, child_conn, self._req_ring.name, self._resp_ring.name,
                  config.slot_size, config.ring_slots, generation,
                  self._telemetry),
            name=f"engine-worker-{self.spec.model}",
            daemon=True,
        )
        overrides = dict(self.spec.env or ())
        with _SPAWN_ENV_LOCK:
            saved = {key: os.environ.get(key) for key in overrides}
            try:
                os.environ.update(overrides)
                process.start()
            finally:
                for key, value in saved.items():
                    if value is None:
                        os.environ.pop(key, None)
                    else:
                        os.environ[key] = value
        child_conn.close()
        self._process = process
        with self._stats_lock:
            self._warmed_up = False

    def wait_ready(self, timeout: Optional[float] = None) -> float:
        """Block until the worker reports its engine loaded and warmed."""
        with self._lock:
            return self._wait_ready_locked(timeout)

    def _wait_ready_locked(self, timeout: Optional[float] = None) -> float:
        timeout = timeout if timeout is not None else self.config.spawn_timeout_s
        try:
            reply = self._recv(timeout)
        except EngineCrash as error:
            raise WorkerStartupError(
                f"worker for {self.spec.model!r} did not come up: {error}") from error
        if reply[0] == "startup_failed":
            self._process.join(timeout=5.0)
            raise WorkerStartupError(
                f"worker for {self.spec.model!r} failed to start: {reply[1]}")
        if reply[0] != "ready":
            raise WorkerStartupError(
                f"worker for {self.spec.model!r} sent {reply[0]!r} before 'ready'")
        warmup_seconds = float(reply[2])
        with self._stats_lock:
            self._warmup_seconds = warmup_seconds
            self._warmed_up = True
        return warmup_seconds

    def _alive(self) -> bool:
        return self._process.is_alive()

    def _recv(self, timeout: float):
        """Receive one reply; raise :class:`EngineCrash` on death/wedge."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if self._conn.poll(0.05):
                    return self._conn.recv()
            except (EOFError, OSError) as error:
                raise EngineCrash(
                    f"worker process for {self.spec.model!r} died mid-message "
                    f"({error!r}, exit code {self._process.exitcode})") from error
            if not self._process.is_alive():
                # One final poll: a dying worker may have flushed a reply.
                try:
                    if self._conn.poll(0):
                        return self._conn.recv()
                except (EOFError, OSError):
                    pass
                raise EngineCrash(
                    f"worker process for {self.spec.model!r} died mid-batch "
                    f"(exit code {self._process.exitcode})")
            if time.monotonic() >= deadline:
                self._process.terminate()
                raise EngineCrash(
                    f"worker for {self.spec.model!r} gave no answer within "
                    f"{timeout:.0f}s (wedged); terminated for respawn")

    # -------------------------------------------------------------- #
    # Engine protocol
    # -------------------------------------------------------------- #
    def predict(self, batch) -> np.ndarray:
        batch = np.ascontiguousarray(batch)
        with self._lock:
            with self._stats_lock:
                closed = self._closed
            if closed:
                raise EngineCrash("remote engine is shut down")
            if not self._alive():
                raise EngineCrash(
                    f"worker process for {self.spec.model!r} is dead "
                    f"(exit code {self._process.exitcode})")
            req_id = next(self._req_id)
            slot = self._req_ring.acquire() if self._req_ring.fits(batch.nbytes) else None
            if slot is not None:
                shape, dtype = self._req_ring.write(slot, batch)
                self._conn.send(("batch", req_id, slot, shape, dtype))
            else:
                # Larger than a ring slot: correctness over zero-copy.
                with self._stats_lock:
                    self._oversized_transfers += 1
                self._conn.send(("batch_pickled", req_id, batch))
            sent_at = time.monotonic()
            reply = self._recv(self.config.request_timeout_s)
            roundtrip_ms = (time.monotonic() - sent_at) * 1e3
            return self._handle_reply_locked(reply, req_id, roundtrip_ms)

    __call__ = predict

    def _handle_reply_locked(self, reply, req_id: int, roundtrip_ms: float) -> np.ndarray:
        kind = reply[0]
        if kind == "result":
            _, rid, out_slot, shape, dtype, req_slot, telemetry = reply
            self._release_request_slot(req_slot)
            self._absorb_telemetry_locked(telemetry, roundtrip_ms)
            # The worker reuses the slot only after our "free" ack, but the
            # result outlives this call, so copy out of the mapping.
            outputs = np.array(self._resp_ring.view(out_slot, shape, dtype), copy=True)
            self._send_free(out_slot)
            return outputs
        if kind == "result_pickled":
            _, rid, outputs, req_slot, telemetry = reply
            self._release_request_slot(req_slot)
            self._absorb_telemetry_locked(telemetry, roundtrip_ms)
            return outputs
        if kind == "error":
            _, rid, ekind, type_name, message, req_slot, telemetry = reply
            self._release_request_slot(req_slot)
            self._absorb_telemetry_locked(telemetry, roundtrip_ms)
            if ekind == "crash":
                raise EngineCrash(f"worker engine crashed: {message}")
            raise _rebuild_error(type_name, message)
        raise EngineCrash(f"unexpected worker reply {kind!r}")

    def _absorb_telemetry_locked(self, telemetry: Optional[dict],
                                 roundtrip_ms: float) -> None:
        """Merge a worker reply's piggybacked telemetry into this process."""
        if telemetry is None:
            with self._stats_lock:
                self._last_transport_ms = None
            return
        compute_ms = telemetry.get("compute_ms")
        with self._stats_lock:
            self._last_transport_ms = (
                max(0.0, roundtrip_ms - float(compute_ms))
                if compute_ms is not None else None)
        delta = telemetry.get("metrics")
        if delta is not None and observability.enabled():
            observability.registry().apply_delta(
                delta, extra_labels=self.telemetry_labels)
        spans = telemetry.get("spans")
        if spans:
            tracer = observability.active_tracer()
            if tracer is not None:
                tracer.extend(spans)

    def _release_request_slot(self, req_slot: Optional[int]) -> None:
        if req_slot is not None:
            self._req_ring.release(req_slot)

    def _send_free(self, out_slot: int) -> None:
        try:
            self._conn.send(("free", out_slot))
        except (BrokenPipeError, OSError):
            pass  # worker died; respawn rebuilds the rings anyway

    def rewarm(self) -> float:
        """Supervised restart hook: rewarm a live worker, respawn a dead one.

        Called by the shard's :class:`InferenceServer` supervisor after an
        :class:`EngineCrash`.  If the worker process is still alive the
        rewarm is forwarded to it (covers injected in-engine crashes); if
        it is dead, the transport is torn down and a **fresh worker** is
        spawned, re-loads the checkpoint, and re-warms before this returns.
        Raises :class:`EngineCrash` if either path fails, so the
        supervisor's bounded-restart accounting still applies.
        """
        with self._lock:
            with self._stats_lock:
                closed = self._closed
            if closed:
                raise EngineCrash("remote engine is shut down")
            if self._alive():
                try:
                    self._conn.send(("rewarm",))
                    reply = self._recv(self.config.spawn_timeout_s)
                except EngineCrash:
                    if self._alive():
                        raise
                    return self._respawn_locked()
                if reply[0] == "rewarmed":
                    with self._stats_lock:
                        self._warmed_up = True
                    return float(reply[1])
                if reply[0] == "rewarm_failed":
                    raise EngineCrash(f"worker rewarm failed: {reply[1]}")
                raise EngineCrash(f"unexpected rewarm reply {reply[0]!r}")
            return self._respawn_locked()

    def _respawn_locked(self) -> float:
        self._teardown_transport()
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)
        with self._stats_lock:
            self._generation += 1
            self._respawns += 1
        self._spawn_locked()
        try:
            return self._wait_ready_locked()
        except WorkerStartupError as error:
            raise EngineCrash(f"worker respawn failed: {error}") from error

    # -------------------------------------------------------------- #
    def _teardown_transport(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
        self._req_ring.close()
        self._resp_ring.close()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the worker and release every transport resource."""
        with self._lock:
            with self._stats_lock:
                if self._closed:
                    return
                self._closed = True
            if self._process.is_alive():
                try:
                    self._conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            self._process.join(timeout=timeout)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=timeout)
            self._teardown_transport()

    # -------------------------------------------------------------- #
    def stats(self) -> EngineStats:
        """One internally-consistent snapshot of the worker counters.

        Reads everything under ``_stats_lock`` (not ``_lock``), so a
        monitoring scrape never waits behind an in-flight batch round-trip.
        """
        alive = self._process.is_alive()
        pid = self._process.pid
        with self._stats_lock:
            return EngineStats(
                alive=alive and not self._closed,
                pid=pid,
                generation=self._generation,
                respawns=self._respawns,
                oversized_transfers=self._oversized_transfers,
                warmup_seconds=self._warmup_seconds,
                warmed_up=self._warmed_up,
            )

    def reset_stats(self) -> None:  # engine-protocol compatibility
        pass


# --------------------------------------------------------------------------- #
# Sharded front end
# --------------------------------------------------------------------------- #
@dataclass
class _Shard:
    index: int
    spec: WorkerSpec
    engine: RemoteEngine
    server: InferenceServer


class ShardedServer:
    """Route requests across N worker processes, each a supervised shard.

    ``workers`` is a sequence of :class:`WorkerSpec`; specs sharing a
    ``model`` label form that family's shard group.  ``submit`` validates,
    admits (cluster-wide backpressure), routes (round-robin, least-loaded,
    or token-bucket affinity) and delegates to the chosen shard's
    :class:`InferenceServer` -- deadlines, bisection, retries, and worker
    supervision all happen per shard with the single-process semantics.
    """

    def __init__(self, workers: Sequence[WorkerSpec],
                 config: Optional[ClusterConfig] = None):
        if not workers:
            raise ValueError("ShardedServer needs at least one WorkerSpec")
        self.config = config if config is not None else ClusterConfig()
        # Shard batching reuses the per-shard knobs; queue depth is governed
        # cluster-wide so a busy shard cannot reject what the cluster can
        # still serve.
        shard_batching = dataclasses.replace(self.config.batching, max_queue_depth=None)
        self._close_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._closed = False  # guarded-by: _close_lock
        self._latency_hist = LatencyHistogram("cluster_request_latency_ms")  # guarded-by: _stats_lock
        self._completed = 0  # guarded-by: _stats_lock
        self._rejected = 0  # guarded-by: _stats_lock
        self._first_enqueued: Optional[float] = None  # guarded-by: _stats_lock
        self._last_completed: Optional[float] = None  # guarded-by: _stats_lock
        self._capacity = (threading.Semaphore(self.config.max_queue_depth)
                          if self.config.max_queue_depth is not None else None)
        self._shards: List[_Shard] = []
        engines: List[RemoteEngine] = []
        try:
            # Start every worker first, then wait: spawns overlap, so an
            # N-worker cluster comes up in ~one worker's startup time.
            for spec in workers:
                engines.append(RemoteEngine(spec, self.config))
            for engine in engines:
                engine.wait_ready()
            for index, (spec, engine) in enumerate(zip(workers, engines)):
                engine.telemetry_labels = {"model": spec.model,
                                           "shard": str(index)}
                server = InferenceServer(engine, shard_batching,
                                         name=f"shard{index}")
                self._shards.append(_Shard(index, spec, engine, server))
        except BaseException:
            for shard in self._shards:
                try:
                    shard.server.close(drain=False, timeout=5.0)
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
            for engine in engines:
                try:
                    engine.shutdown(timeout=5.0)
                except Exception:  # noqa: BLE001
                    pass
            raise
        self._families: Dict[str, List[_Shard]] = {}
        for shard in self._shards:
            self._families.setdefault(shard.spec.model, []).append(shard)
        self._round_robin = {family: itertools.count()
                             for family in self._families}

    # -------------------------------------------------------------- #
    # Routing
    # -------------------------------------------------------------- #
    def _resolve_family(self, model: Optional[str]) -> str:
        if model is None:
            if len(self._families) == 1:
                return next(iter(self._families))
            raise InvalidRequest(
                f"cluster hosts {sorted(self._families)}; submit(model=...) "
                "must name one")
        if model not in self._families:
            raise InvalidRequest(
                f"unknown model {model!r}; cluster hosts {sorted(self._families)}")
        return model

    def _token_bucket_index(self, payload: np.ndarray) -> Optional[int]:
        """Bucket ordinal for a variable-length token request, else None."""
        pad_lengths = self.config.batching.pad_lengths
        if pad_lengths is None or payload.ndim != 1 or \
                not np.issubdtype(payload.dtype, np.integer):
            return None
        for index, bucket_length in enumerate(pad_lengths):
            if payload.shape[0] <= bucket_length:
                return index
        return len(pad_lengths)  # over-length: shard server rejects it later

    def _route(self, family: str, payload: np.ndarray) -> _Shard:
        shards = self._families[family]
        # Rebalance around unhealthy shards: degraded shards (crash
        # recovery in progress) are used only when nothing healthy remains;
        # failed shards only when nothing else exists at all.
        healthy = [s for s in shards if s.server.state == "healthy"]
        if not healthy:
            healthy = [s for s in shards if s.server.state == "degraded"]
        if not healthy:
            raise ServerUnavailable(
                f"every shard of model {family!r} is failed")
        bucket = self._token_bucket_index(payload)
        if bucket is not None:
            # Padding locality: all requests of one pad bucket share a
            # shard, so the worker sees one batch geometry per bucket.
            return healthy[bucket % len(healthy)]
        if self.config.routing == "least_loaded":
            return min(healthy, key=lambda s: s.server.queue_depth)
        return healthy[next(self._round_robin[family]) % len(healthy)]

    # -------------------------------------------------------------- #
    # Submission
    # -------------------------------------------------------------- #
    def _admit(self) -> None:
        if self._capacity is None:
            return
        if self.config.admission_policy == "reject":
            admitted = self._capacity.acquire(blocking=False)
        else:
            admitted = self._capacity.acquire(
                timeout=self.config.block_timeout_ms / 1e3)
        if not admitted:
            with self._stats_lock:
                self._rejected += 1
            raise ServerOverloaded(
                f"cluster at capacity ({self.config.max_queue_depth} unresolved "
                f"requests, policy={self.config.admission_policy!r})")

    def submit(self, request, model: Optional[str] = None,
               deadline_ms: Optional[float] = None) -> "Future":
        """Route one request to a shard; returns the shard's future.

        Semantics match :meth:`InferenceServer.submit` (deadlines,
        validation, admission) with cluster-wide admission control and an
        extra ``model=`` selector when the cluster hosts multiple families.
        """
        with self._close_lock:
            closed = self._closed
        if closed:
            raise ServerClosed("sharded server is closed")
        payload = np.asarray(request)
        if self.config.batching.validate_requests:
            validate_payload(payload)
        family = self._resolve_family(model)
        self._admit()
        released = [False]

        def _release(_future=None):
            if self._capacity is not None and not released[0]:
                released[0] = True
                self._capacity.release()

        now = time.monotonic()
        with self._stats_lock:
            if self._first_enqueued is None:
                self._first_enqueued = now
        try:
            last_error: Optional[BaseException] = None
            for _attempt in range(2):  # one re-route if a shard just failed
                shard = self._route(family, payload)
                try:
                    future = shard.server.submit(payload, deadline_ms=deadline_ms)
                    break
                except ServerUnavailable as error:
                    last_error = error  # shard failed between routing and submit
            else:
                raise last_error if last_error is not None else ServerUnavailable(
                    f"no shard of model {family!r} accepted the request")
        except BaseException:
            _release()
            raise
        if self._capacity is not None:
            future.add_done_callback(_release)
        future.add_done_callback(self._record_completion)
        return future

    def predict(self, request, model: Optional[str] = None,
                timeout: Optional[float] = None,
                deadline_ms: Optional[float] = None):
        """Synchronous submission: route and wait for the result."""
        return self.submit(request, model=model,
                           deadline_ms=deadline_ms).result(timeout=timeout)

    def _record_completion(self, future: "Future") -> None:
        if future.cancelled() or future.exception() is not None:
            return
        result = future.result()
        with self._stats_lock:
            self._completed += 1
            self._last_completed = time.monotonic()
            self._latency_hist.observe(result.timing.total_ms)

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def close(self, timeout: Optional[float] = 10.0, drain: bool = True) -> None:
        """Drain every shard, stop every worker, release every segment."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        errors: List[BaseException] = []
        for shard in self._shards:
            try:
                shard.server.close(timeout=timeout, drain=drain)
            except BaseException as error:  # noqa: BLE001 - close all anyway
                errors.append(error)
        for shard in self._shards:
            try:
                shard.engine.shutdown(timeout=timeout if timeout is not None else 10.0)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)
        if errors:
            raise errors[0]

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- #
    # Accounting
    # -------------------------------------------------------------- #
    @property
    def workers(self) -> int:
        return len(self._shards)

    @property
    def models(self) -> Tuple[str, ...]:
        return tuple(sorted(self._families))

    def stats(self) -> ServerStats:
        """Cluster-level :class:`ServerStats` with one per-shard entry each
        in ``shards`` (same type, ``shards`` empty in turn)."""
        shard_stats = tuple(shard.server.stats() for shard in self._shards)
        with self._stats_lock:
            mean = self._latency_hist.mean
            p50, p95, p99 = self._latency_hist.percentiles()
            completed = self._completed
            rejected = self._rejected
            first = self._first_enqueued
            last = self._last_completed
        states = [s.state for s in shard_stats]
        if any(state == "healthy" for state in states):
            state = "healthy"
        elif any(state == "degraded" for state in states):
            state = "degraded"
        else:
            state = "failed"
        wall = (last - first) if (first is not None and last is not None) else None
        batch_sizes = [s.mean_batch_size * s.batches for s in shard_stats
                       if s.batches]
        total_batches = sum(s.batches for s in shard_stats)
        return ServerStats(
            state=state,
            requests=completed,
            batches=total_batches,
            mean_batch_size=(sum(batch_sizes) / total_batches
                             if total_batches else float("nan")),
            latency_ms_mean=mean,
            latency_ms_p50=p50,
            latency_ms_p95=p95,
            latency_ms_p99=p99,
            throughput_rps=(completed / wall) if wall and wall > 0 else float("nan"),
            queue_depth=sum(s.queue_depth for s in shard_stats),
            shed_deadline=sum(s.shed_deadline for s in shard_stats),
            shed_watermark=sum(s.shed_watermark for s in shard_stats),
            rejected=rejected + sum(s.rejected for s in shard_stats),
            requeues=sum(s.requeues for s in shard_stats),
            failed_requests=sum(s.failed_requests for s in shard_stats),
            nonfinite_outputs=sum(s.nonfinite_outputs for s in shard_stats),
            engine_crashes=sum(s.engine_crashes for s in shard_stats),
            engine_restarts=sum(s.engine_restarts for s in shard_stats),
            worker_respawns=sum(shard.engine.respawns for shard in self._shards),
            oversized_transfers=sum(shard.engine.oversized_transfers
                                    for shard in self._shards),
            workers=len(self._shards),
            shards=shard_stats,
        )

    # -------------------------------------------------------------- #
    # Cluster-wide telemetry view
    # -------------------------------------------------------------- #
    # Worker metric deltas piggyback on batch replies and are merged into
    # this process's global registry with {"model", "shard"} labels (see
    # RemoteEngine._absorb_telemetry), so the registry already holds the
    # single cluster-wide view with a per-shard breakdown.  These helpers
    # just expose it from the serving front end.
    def metrics_snapshot(self) -> dict:
        """JSON-ready snapshot of every metric, worker shards included."""
        return observability.registry().snapshot()  # repro-lint: disable=RL003 -- scrape endpoint, not a hot path

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the cluster-wide registry."""
        return observability.registry().render_prometheus()  # repro-lint: disable=RL003 -- scrape endpoint, not a hot path
