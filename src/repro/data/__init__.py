"""Synthetic dataset substrate (offline substitutes for CIFAR/ImageNet/IWSLT/VOC)."""

from .detection import SyntheticDetectionDataset
from .loader import DataLoader
from .translation import BOS, EOS, PAD, SyntheticTranslationDataset
from .vision import SyntheticImageDataset, synthetic_cifar, synthetic_imagenet

__all__ = [
    "DataLoader",
    "SyntheticImageDataset",
    "synthetic_cifar",
    "synthetic_imagenet",
    "SyntheticTranslationDataset",
    "PAD",
    "BOS",
    "EOS",
    "SyntheticDetectionDataset",
]
