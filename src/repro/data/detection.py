"""Synthetic object-detection dataset (PASCAL VOC substitute).

Images contain one or two axis-aligned rectangles; each class has a distinct
colour signature and fill texture.  Targets are produced directly in the
YOLO grid layout expected by :func:`repro.models.yolo.yolo_loss`:
``(grid, grid, 5 + num_classes)`` with ``(tx, ty, tw, th, objectness,
one-hot class)`` per cell, where the cell containing a box centre owns the
box.  Ground-truth boxes in normalized coordinates are also kept for mAP
scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["SyntheticDetectionDataset"]


@dataclass
class SyntheticDetectionDataset:
    """Images with coloured rectangles and YOLO-format targets.

    Parameters
    ----------
    num_samples:
        Number of images.
    num_classes:
        Number of object classes (distinct colour signatures).
    image_size:
        Square image resolution; must be divisible by ``grid_size``.
    grid_size:
        YOLO grid resolution (matches the model's output map).
    max_objects:
        Maximum number of objects per image (1 or 2).
    noise:
        Background noise standard deviation.
    seed:
        Seed for reproducible generation.
    """

    num_samples: int = 128
    num_classes: int = 3
    image_size: int = 32
    grid_size: int = 4
    max_objects: int = 2
    noise: float = 0.2
    seed: int = 0

    def __post_init__(self):
        if self.image_size % self.grid_size:
            raise ValueError("image_size must be divisible by grid_size")
        rng = np.random.default_rng(self.seed)
        # Each class gets a distinct RGB signature.
        self.class_colors = rng.uniform(0.5, 1.5, size=(self.num_classes, 3))
        channels = 3
        depth = 5 + self.num_classes

        self.images = rng.standard_normal(
            (self.num_samples, channels, self.image_size, self.image_size)) * self.noise
        self.targets = np.zeros((self.num_samples, self.grid_size, self.grid_size, depth))
        self.boxes: List[List[Tuple[float, float, float, float, int]]] = []

        for index in range(self.num_samples):
            count = rng.integers(1, self.max_objects + 1)
            image_boxes = []
            for _ in range(count):
                class_id = int(rng.integers(0, self.num_classes))
                width = rng.uniform(0.2, 0.45)
                height = rng.uniform(0.2, 0.45)
                x_center = rng.uniform(width / 2, 1.0 - width / 2)
                y_center = rng.uniform(height / 2, 1.0 - height / 2)
                self._draw_box(index, x_center, y_center, width, height, class_id, rng)
                self._write_target(index, x_center, y_center, width, height, class_id)
                image_boxes.append((x_center, y_center, width, height, class_id))
            self.boxes.append(image_boxes)

    def _draw_box(self, index: int, x_center: float, y_center: float,
                  width: float, height: float, class_id: int, rng: np.random.Generator) -> None:
        size = self.image_size
        x0 = int((x_center - width / 2) * size)
        x1 = int((x_center + width / 2) * size)
        y0 = int((y_center - height / 2) * size)
        y1 = int((y_center + height / 2) * size)
        color = self.class_colors[class_id]
        texture = rng.standard_normal((3, max(y1 - y0, 1), max(x1 - x0, 1))) * 0.1
        self.images[index, :, y0:y1, x0:x1] = color[:, None, None] + texture

    def _write_target(self, index: int, x_center: float, y_center: float,
                      width: float, height: float, class_id: int) -> None:
        grid = self.grid_size
        cell_x = min(int(x_center * grid), grid - 1)
        cell_y = min(int(y_center * grid), grid - 1)
        tx = x_center * grid - cell_x
        ty = y_center * grid - cell_y
        tw = np.log(max(width * grid, 1e-6))
        th = np.log(max(height * grid, 1e-6))
        target = self.targets[index, cell_y, cell_x]
        target[0:4] = (tx, ty, tw, th)
        target[4] = 1.0
        target[5 + class_id] = 1.0

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int):
        return self.images[index], self.targets[index]

    def arrays(self):
        """The whole dataset as ``(images, targets)`` arrays."""
        return self.images, self.targets

    def ground_truth_boxes(self) -> List[List[Tuple[float, float, float, float, int]]]:
        """Ground-truth boxes per image as (x, y, w, h, class_id) in [0, 1] coords."""
        return self.boxes

    def split(self, train_fraction: float = 0.8):
        """Deterministic train/validation split."""
        cut = int(self.num_samples * train_fraction)
        return _SubsetDetectionDataset(self, np.arange(cut)), \
            _SubsetDetectionDataset(self, np.arange(cut, self.num_samples))


class _SubsetDetectionDataset:
    """A view of a subset of a :class:`SyntheticDetectionDataset`."""

    def __init__(self, parent: SyntheticDetectionDataset, indices: np.ndarray):
        self.parent = parent
        self.indices = np.asarray(indices)
        self.images = parent.images[self.indices]
        self.targets = parent.targets[self.indices]
        self.boxes = [parent.boxes[i] for i in self.indices]
        self.num_classes = parent.num_classes
        self.grid_size = parent.grid_size
        self.image_size = parent.image_size

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.images[index], self.targets[index]

    def arrays(self):
        return self.images, self.targets

    def ground_truth_boxes(self):
        return self.boxes
