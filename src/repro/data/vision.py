"""Synthetic image-classification datasets.

The paper's vision experiments use CIFAR-10 and ImageNet, which are not
available offline.  These datasets substitute class-conditional synthetic
images: each class has a smooth random prototype pattern (a low-frequency
random field), and samples are noisy, randomly shifted copies of their class
prototype.  Small CNNs reach high accuracy on the task within a few epochs,
while heavy quantization of weights/activations/gradients measurably slows or
degrades learning -- which is the property the paper's format comparisons
need (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SyntheticImageDataset", "synthetic_cifar", "synthetic_imagenet"]


def _smooth_random_field(rng: np.random.Generator, channels: int, size: int, smoothness: int = 3) -> np.ndarray:
    """A smooth random pattern: random low-resolution field upsampled bilinearly."""
    low_res = max(2, size // (2 ** smoothness) + 1)
    coarse = rng.standard_normal((channels, low_res, low_res))
    # Bilinear upsample to (size, size).
    positions = np.linspace(0, low_res - 1, size)
    x0 = np.floor(positions).astype(int)
    x1 = np.minimum(x0 + 1, low_res - 1)
    frac = positions - x0
    rows = coarse[:, x0, :] * (1 - frac)[None, :, None] + coarse[:, x1, :] * frac[None, :, None]
    field = rows[:, :, x0] * (1 - frac)[None, None, :] + rows[:, :, x1] * frac[None, None, :]
    return field


@dataclass
class SyntheticImageDataset:
    """Class-conditional synthetic images.

    Parameters
    ----------
    num_samples:
        Total number of images.
    num_classes:
        Number of classes (each gets a distinct prototype pattern).
    image_size:
        Spatial resolution (square images).
    channels:
        Number of channels (3 for RGB-like data).
    noise:
        Standard deviation of the additive Gaussian noise; larger values make
        the task harder and more sensitive to quantization error.
    max_shift:
        Maximum circular shift (pixels) applied per sample for variability.
    seed:
        Seed for reproducible generation.
    dtype:
        Floating dtype of the stored images (default float64, the bit-exact
        reference; ``np.float32`` feeds the float32 compute mode without a
        per-batch cast).  Generation always runs in float64 so the pixel
        values are the same stream for every dtype, rounded once at the end.
    """

    num_samples: int = 512
    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    noise: float = 0.6
    max_shift: int = 2
    seed: int = 0
    dtype: type = np.float64

    def __post_init__(self):
        rng = np.random.default_rng(self.seed)
        self.prototypes = np.stack([
            _smooth_random_field(rng, self.channels, self.image_size)
            for _ in range(self.num_classes)
        ])
        # Normalize prototypes so classes have comparable energy.
        norms = np.sqrt((self.prototypes ** 2).mean(axis=(1, 2, 3), keepdims=True))
        self.prototypes = self.prototypes / np.maximum(norms, 1e-8)
        self.labels = rng.integers(0, self.num_classes, size=self.num_samples)
        shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=(self.num_samples, 2))
        noise_fields = rng.standard_normal(
            (self.num_samples, self.channels, self.image_size, self.image_size)
        ) * self.noise
        images = np.empty_like(noise_fields)
        for index in range(self.num_samples):
            prototype = self.prototypes[self.labels[index]]
            shifted = np.roll(prototype, shift=tuple(shifts[index]), axis=(1, 2))
            images[index] = shifted + noise_fields[index]
        self.images = images.astype(self.dtype)

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full dataset as ``(images, labels)`` arrays."""
        return self.images, self.labels

    def split(self, train_fraction: float = 0.8) -> Tuple["SyntheticImageDataset", "SyntheticImageDataset"]:
        """Deterministic train/validation split preserving generation parameters."""
        cut = int(self.num_samples * train_fraction)
        train = _SubsetImageDataset(self, np.arange(0, cut))
        validation = _SubsetImageDataset(self, np.arange(cut, self.num_samples))
        return train, validation


class _SubsetImageDataset:
    """A view of a subset of a :class:`SyntheticImageDataset`."""

    def __init__(self, parent: SyntheticImageDataset, indices: np.ndarray):
        self.parent = parent
        self.indices = indices
        self.images = parent.images[indices]
        self.labels = parent.labels[indices]
        self.num_classes = parent.num_classes
        self.image_size = parent.image_size
        self.channels = parent.channels

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.images[index], int(self.labels[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.images, self.labels


def synthetic_cifar(num_samples: int = 512, image_size: int = 16, num_classes: int = 10,
                    noise: float = 0.6, seed: int = 0, dtype=np.float64) -> SyntheticImageDataset:
    """A CIFAR-10-like task: 10 classes of small RGB images."""
    return SyntheticImageDataset(num_samples=num_samples, num_classes=num_classes,
                                 image_size=image_size, channels=3, noise=noise, seed=seed,
                                 dtype=dtype)


def synthetic_imagenet(num_samples: int = 512, image_size: int = 24, num_classes: int = 20,
                       noise: float = 0.7, seed: int = 0, dtype=np.float64) -> SyntheticImageDataset:
    """An ImageNet-like task: more classes, slightly larger images, more noise."""
    return SyntheticImageDataset(num_samples=num_samples, num_classes=num_classes,
                                 image_size=image_size, channels=3, noise=noise, seed=seed,
                                 dtype=dtype)
