"""Minimal batching data loader.

Works with any dataset exposing ``__len__`` and ``__getitem__``; batches are
built by stacking the per-sample arrays.  Labels/targets that are tuples
(e.g. the translation dataset's ``(decoder_input, decoder_target)``) are
stacked element-wise.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["DataLoader", "cast_floating"]


def cast_floating(batch, dtype):
    """Cast floating arrays (recursing into tuples) to ``dtype``.

    Integer arrays -- labels, token ids -- pass through untouched, as does
    everything when ``dtype`` is ``None``.  Shared by :class:`DataLoader`
    and the trainers' ``compute_dtype`` handling so the casting policy lives
    in one place.
    """
    if dtype is None:
        return batch
    if isinstance(batch, tuple):
        return tuple(cast_floating(item, dtype) for item in batch)
    batch = np.asarray(batch)
    if np.issubdtype(batch.dtype, np.floating) and batch.dtype != dtype:
        return batch.astype(dtype)
    return batch


def _stack(items):
    first = items[0]
    if isinstance(first, tuple):
        return tuple(_stack([item[i] for item in items]) for i in range(len(first)))
    return np.stack([np.asarray(item) for item in items])


class DataLoader:
    """Iterate over a dataset in shuffled (or ordered) mini-batches.

    Parameters
    ----------
    dataset:
        Object with ``__len__`` and ``__getitem__`` returning ``(x, y)``.
    batch_size:
        Samples per batch.
    shuffle:
        Reshuffle sample order at the start of each iteration.
    drop_last:
        Drop the final batch when it is smaller than ``batch_size``.
    seed:
        Seed of the shuffling RNG (per-loader, advanced every epoch).
    dtype:
        Optional floating dtype for batches.  When set, floating input and
        target arrays are cast to it after stacking (integer arrays -- labels,
        token ids -- are untouched), so a float64 dataset can feed a float32
        compute pipeline without touching the dataset itself.
    """

    def __init__(self, dataset, batch_size: int = 32, shuffle: bool = True,
                 drop_last: bool = False, seed: int = 0, dtype=None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.dtype = None if dtype is None else np.dtype(dtype)
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        count = len(self.dataset)
        if self.drop_last:
            return count // self.batch_size
        return -(-count // self.batch_size)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            samples = [self.dataset[int(i)] for i in batch_indices]
            inputs = cast_floating(_stack([sample[0] for sample in samples]), self.dtype)
            labels = cast_floating(_stack([sample[1] for sample in samples]), self.dtype)
            yield inputs, labels
