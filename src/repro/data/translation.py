"""Synthetic sequence-transduction dataset (IWSLT14 De-En substitute).

Each example is a random token sequence; the target is a deterministic
transformation of the source (reverse the sequence and shift every token id
by one within the content vocabulary).  The task exercises the same
encoder-decoder Transformer computation as real translation -- attention over
the source, autoregressive decoding, token-level cross-entropy -- and is
scored with BLEU so the format-comparison experiments report the same metric
as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SyntheticTranslationDataset", "PAD", "BOS", "EOS"]

PAD = 0
BOS = 1
EOS = 2
_SPECIAL_TOKENS = 3


@dataclass
class SyntheticTranslationDataset:
    """Reverse-and-shift transduction task.

    Parameters
    ----------
    num_samples:
        Number of sequence pairs.
    vocab_size:
        Total vocabulary size including PAD/BOS/EOS.
    min_length, max_length:
        Source sequence length range (tokens, excluding BOS/EOS).
    seed:
        Seed for reproducible generation.
    """

    num_samples: int = 256
    vocab_size: int = 32
    min_length: int = 4
    max_length: int = 10
    seed: int = 0

    def __post_init__(self):
        if self.vocab_size <= _SPECIAL_TOKENS + 1:
            raise ValueError("vocab_size must exceed the number of special tokens")
        rng = np.random.default_rng(self.seed)
        self.pad_index = PAD
        self.bos_index = BOS
        self.eos_index = EOS
        # +2 holds BOS/EOS on the decoder side.
        self.sequence_length = self.max_length + 2
        content = self.vocab_size - _SPECIAL_TOKENS

        sources = np.full((self.num_samples, self.sequence_length), PAD, dtype=np.int64)
        targets_in = np.full((self.num_samples, self.sequence_length), PAD, dtype=np.int64)
        targets_out = np.full((self.num_samples, self.sequence_length), PAD, dtype=np.int64)
        for index in range(self.num_samples):
            length = rng.integers(self.min_length, self.max_length + 1)
            tokens = rng.integers(_SPECIAL_TOKENS, self.vocab_size, size=length)
            transformed = ((tokens[::-1] - _SPECIAL_TOKENS + 1) % content) + _SPECIAL_TOKENS
            sources[index, :length] = tokens
            sources[index, length] = EOS
            targets_in[index, 0] = BOS
            targets_in[index, 1:length + 1] = transformed
            targets_out[index, :length] = transformed
            targets_out[index, length] = EOS
        self.sources = sources
        self.targets_in = targets_in
        self.targets_out = targets_out

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        return self.sources[index], (self.targets_in[index], self.targets_out[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The whole dataset as ``(sources, decoder_inputs, decoder_targets)``."""
        return self.sources, self.targets_in, self.targets_out

    def split(self, train_fraction: float = 0.8):
        """Deterministic train/validation split."""
        cut = int(self.num_samples * train_fraction)
        return _SubsetTranslationDataset(self, np.arange(cut)), \
            _SubsetTranslationDataset(self, np.arange(cut, self.num_samples))

    def reference_sentences(self, indices=None):
        """Reference target token lists (without padding/EOS) for BLEU scoring."""
        indices = range(self.num_samples) if indices is None else indices
        references = []
        for index in indices:
            row = self.targets_out[index]
            tokens = [int(token) for token in row if token not in (PAD, EOS)]
            references.append(tokens)
        return references


class _SubsetTranslationDataset:
    """A view of a subset of a :class:`SyntheticTranslationDataset`."""

    def __init__(self, parent: SyntheticTranslationDataset, indices: np.ndarray):
        self.parent = parent
        self.indices = np.asarray(indices)
        self.sources = parent.sources[self.indices]
        self.targets_in = parent.targets_in[self.indices]
        self.targets_out = parent.targets_out[self.indices]
        self.vocab_size = parent.vocab_size
        self.pad_index = parent.pad_index
        self.bos_index = parent.bos_index
        self.eos_index = parent.eos_index
        self.sequence_length = parent.sequence_length

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.sources[index], (self.targets_in[index], self.targets_out[index])

    def arrays(self):
        return self.sources, self.targets_in, self.targets_out

    def reference_sentences(self, indices=None):
        indices = range(len(self.indices)) if indices is None else indices
        references = []
        for index in indices:
            row = self.targets_out[index]
            tokens = [int(token) for token in row if token not in (PAD, EOS)]
            references.append(tokens)
        return references
