"""Evaluation models: scaled-down, architecture-faithful versions of the
networks the paper trains (ResNet-18/20/50, VGG-16, MobileNet-v2, a
Transformer, and YOLOv2)."""

from .mlp import MLP
from .mobilenet import InvertedResidual, MobileNetV2, mobilenet_v2
from .resnet import BasicBlock, BottleneckBlock, ResNet, resnet18, resnet20, resnet20_uniform, resnet50
from .transformer import Seq2SeqTransformer, transformer_base, transformer_small
from .vgg import VGG, vgg11, vgg16
from .yolo import TinyYOLO, decode_predictions, tiny_yolo, yolo_loss

__all__ = [
    "MLP",
    "ResNet",
    "BasicBlock",
    "BottleneckBlock",
    "resnet18",
    "resnet20",
    "resnet20_uniform",
    "resnet50",
    "VGG",
    "vgg11",
    "vgg16",
    "MobileNetV2",
    "InvertedResidual",
    "mobilenet_v2",
    "Seq2SeqTransformer",
    "transformer_small",
    "transformer_base",
    "TinyYOLO",
    "tiny_yolo",
    "decode_predictions",
    "yolo_loss",
]
