"""A compact single-scale YOLO-style detector.

The paper trains YOLOv2 on PASCAL VOC2012.  This model keeps the defining
ingredients of YOLOv2 -- a fully convolutional backbone, a grid of cells each
predicting box offsets (sigmoid-activated centre, exponential size),
objectness and class scores, trained with a multi-part loss -- while scaling
the backbone down so the synthetic detection task of
:mod:`repro.data.detection` trains on a CPU.

The output tensor has shape ``(batch, grid, grid, 5 + num_classes)`` with the
last axis laid out as ``(tx, ty, tw, th, objectness, class logits...)``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .. import nn
from ..nn.quantized import QuantizedConv2d

__all__ = ["TinyYOLO", "tiny_yolo", "decode_predictions", "yolo_loss"]


class TinyYOLO(nn.Module):
    """Convolutional backbone + 1x1 detection head on a ``grid x grid`` map."""

    def __init__(self, num_classes: int = 3, in_channels: int = 3, width: int = 8,
                 grid_size: int = 4, rng=None):
        super().__init__()
        self.num_classes = num_classes
        self.grid_size = grid_size
        self.out_channels = 5 + num_classes
        layers: List[nn.Module] = []
        channels = [width, width * 2, width * 4]
        current = in_channels
        for out in channels:
            layers.append(QuantizedConv2d(current, out, 3, padding=1, bias=False, rng=rng))
            layers.append(nn.BatchNorm2d(out))
            layers.append(nn.LeakyReLU(0.1))
            layers.append(nn.MaxPool2d(2))
            current = out
        self.backbone = nn.Sequential(*layers)
        self.head = QuantizedConv2d(current, self.out_channels, 1, rng=rng)

    def forward(self, x):
        x = nn.as_tensor(x)
        features = self.backbone(x)
        predictions = self.head(features)
        # (batch, channels, grid, grid) -> (batch, grid, grid, channels)
        return predictions.transpose(0, 2, 3, 1)


def tiny_yolo(num_classes: int = 3, image_size: int = 32, width: int = 8, rng=None) -> TinyYOLO:
    """Build a :class:`TinyYOLO` whose grid matches ``image_size`` (3 pooling stages)."""
    grid = image_size // 8
    return TinyYOLO(num_classes=num_classes, width=width, grid_size=grid, rng=rng)


def decode_predictions(raw: np.ndarray, threshold: float = 0.5) -> List[List[Tuple[float, float, float, float, int, float]]]:
    """Convert raw head outputs to per-image box lists.

    Each returned box is ``(x_center, y_center, width, height, class_id,
    confidence)`` in normalized [0, 1] image coordinates.
    """
    raw = np.asarray(raw)
    batch, grid_h, grid_w, _ = raw.shape
    # Sigmoid over the whole objectness map at once; only the (usually few)
    # confident cells are then decoded, in the same row-major order as the
    # scalar per-cell loop this replaces.
    objectness = 1.0 / (1.0 + np.exp(-raw[..., 4]))
    results = []
    for b in range(batch):
        # Negated comparison so NaN objectness passes the gate, exactly like
        # the scalar loop's ``if objectness < threshold: continue``.
        mask = ~(objectness[b] < threshold)
        if not mask.any():
            results.append([])
            continue
        rows, cols = np.nonzero(mask)
        cells = raw[b, rows, cols]
        tx = 1.0 / (1.0 + np.exp(-cells[:, 0]))
        ty = 1.0 / (1.0 + np.exp(-cells[:, 1]))
        tw = np.exp(np.clip(cells[:, 2], -6, 6))
        th = np.exp(np.clip(cells[:, 3], -6, 6))
        x_center = (cols + tx) / grid_w
        y_center = (rows + ty) / grid_h
        width = np.minimum(tw / grid_w, 1.0)
        height = np.minimum(th / grid_h, 1.0)
        class_id = np.argmax(cells[:, 5:], axis=1)
        confidence = objectness[b, rows, cols]
        results.append(list(zip(
            x_center.tolist(), y_center.tolist(), width.tolist(), height.tolist(),
            class_id.tolist(), confidence.tolist(),
        )))
    return results


def yolo_loss(predictions: nn.Tensor, targets: np.ndarray,
              lambda_coord: float = 5.0, lambda_noobj: float = 0.5) -> nn.Tensor:
    """YOLO-style multi-part loss.

    ``targets`` has the same (batch, grid, grid, 5 + classes) layout with
    ground-truth ``(tx, ty, tw, th)`` offsets, a 0/1 objectness flag and a
    one-hot class vector.  Coordinate and class terms are only applied to
    cells containing an object; the no-object cells only contribute a
    down-weighted objectness term, following the original YOLO formulation.
    """
    predictions = nn.as_tensor(predictions)
    # Targets and masks follow the prediction dtype so the float32 compute
    # mode is not upcast by float64 target tensors (float64 stays float64).
    targets = np.asarray(targets, dtype=predictions.data.dtype)
    object_mask = targets[..., 4:5]
    noobject_mask = 1.0 - object_mask

    pred_xy = predictions[..., 0:2].sigmoid()
    pred_wh = predictions[..., 2:4]
    pred_obj = predictions[..., 4:5]
    pred_class = predictions[..., 5:]

    target_xy = nn.Tensor(targets[..., 0:2])
    target_wh = nn.Tensor(targets[..., 2:4])
    target_obj = nn.Tensor(targets[..., 4:5])
    target_class = nn.Tensor(targets[..., 5:])
    object_mask_t = nn.Tensor(object_mask)
    noobject_mask_t = nn.Tensor(noobject_mask)

    coord_loss = (((pred_xy - target_xy) ** 2) * object_mask_t).sum()
    size_loss = (((pred_wh - target_wh) ** 2) * object_mask_t).sum()
    objectness = pred_obj.sigmoid()
    obj_loss = (((objectness - target_obj) ** 2) * object_mask_t).sum()
    noobj_loss = (((objectness - target_obj) ** 2) * noobject_mask_t).sum()
    class_loss = (((pred_class.softmax(axis=-1) - target_class) ** 2) * object_mask_t).sum()

    batch = predictions.shape[0]
    total = (lambda_coord * (coord_loss + size_loss) + obj_loss
             + lambda_noobj * noobj_loss + class_loss)
    return total * (1.0 / batch)
