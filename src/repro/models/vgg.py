"""VGG-style plain convolutional networks.

The paper evaluates VGG-16; this implementation keeps the characteristic
stacked-3x3-conv + max-pool structure with a configurable width multiplier so
the model trains on a CPU.  ``vgg16`` uses the canonical (2, 2, 3, 3, 3)
stage layout; ``vgg11`` is a lighter variant used in tests.
"""

from __future__ import annotations

from typing import Sequence

from .. import nn
from ..nn.quantized import QuantizedConv2d, QuantizedLinear

__all__ = ["VGG", "vgg11", "vgg16"]


class VGG(nn.Module):
    """Plain convolutional network: conv stacks separated by max pooling."""

    def __init__(
        self,
        stage_convs: Sequence[int],
        stage_channels: Sequence[int],
        num_classes: int = 10,
        in_channels: int = 3,
        classifier_hidden: int = 64,
        rng=None,
    ):
        super().__init__()
        if len(stage_convs) != len(stage_channels):
            raise ValueError("stage_convs and stage_channels must have equal length")
        layers = []
        current = in_channels
        for count, channels in zip(stage_convs, stage_channels):
            for _ in range(count):
                layers.append(QuantizedConv2d(current, channels, 3, padding=1, bias=False, rng=rng))
                layers.append(nn.BatchNorm2d(channels))
                layers.append(nn.ReLU())
                current = channels
            layers.append(nn.MaxPool2d(2))
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Sequential(
            QuantizedLinear(current, classifier_hidden, rng=rng),
            nn.ReLU(),
            QuantizedLinear(classifier_hidden, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x):
        out = self.features(nn.as_tensor(x))
        out = self.pool(out)
        return self.classifier(out)


def vgg11(num_classes: int = 10, width: int = 8, in_channels: int = 3, rng=None) -> VGG:
    """Light VGG variant with (1, 1, 2, 2) conv stages."""
    channels = (width, width * 2, width * 4, width * 8)
    return VGG((1, 1, 2, 2), channels, num_classes=num_classes, in_channels=in_channels, rng=rng)


def vgg16(num_classes: int = 10, width: int = 8, in_channels: int = 3, rng=None) -> VGG:
    """VGG-16 layout: (2, 2, 3, 3, 3) conv stages."""
    channels = (width, width * 2, width * 4, width * 8, width * 8)
    return VGG((2, 2, 3, 3, 3), channels, num_classes=num_classes, in_channels=in_channels, rng=rng)
