"""Residual networks: CIFAR-style ResNet-20 and ImageNet-style ResNet-18/50.

The paper evaluates FAST on ResNet-18 and ResNet-50 (ImageNet) and uses
ResNet-20 (CIFAR-10) for the precision-schedule study of Figure 9.  These
implementations keep the architectural skeleton (residual blocks, stage
layout, downsampling projections, bottlenecks for ResNet-50) but default to
reduced channel widths and input resolutions so they train on a CPU; the
``width`` argument restores full-size channels when desired.
"""

from __future__ import annotations

from typing import List, Sequence

from .. import nn
from ..nn.quantized import QuantizedConv2d, QuantizedLinear

__all__ = ["BasicBlock", "BottleneckBlock", "ResNet", "resnet20", "resnet20_uniform", "resnet18", "resnet50"]


def _conv_bn(in_channels: int, out_channels: int, kernel_size: int, stride: int, padding: int, rng=None):
    return nn.Sequential(
        QuantizedConv2d(in_channels, out_channels, kernel_size, stride=stride, padding=padding,
                        bias=False, rng=rng),
        nn.BatchNorm2d(out_channels),
    )


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with an identity (or projected) skip connection."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, rng=None):
        super().__init__()
        self.conv1 = _conv_bn(in_channels, out_channels, 3, stride, 1, rng=rng)
        self.conv2 = _conv_bn(out_channels, out_channels, 3, 1, 1, rng=rng)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = _conv_bn(in_channels, out_channels, 1, stride, 0, rng=rng)
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        x = nn.as_tensor(x)
        out = self.conv1(x).relu()
        out = self.conv2(out)
        out = out + self.shortcut(x)
        return out.relu()


class BottleneckBlock(nn.Module):
    """1x1 -> 3x3 -> 1x1 bottleneck block used by ResNet-50."""

    expansion = 4

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, rng=None):
        super().__init__()
        expanded = out_channels * self.expansion
        self.conv1 = _conv_bn(in_channels, out_channels, 1, 1, 0, rng=rng)
        self.conv2 = _conv_bn(out_channels, out_channels, 3, stride, 1, rng=rng)
        self.conv3 = _conv_bn(out_channels, expanded, 1, 1, 0, rng=rng)
        if stride != 1 or in_channels != expanded:
            self.shortcut = _conv_bn(in_channels, expanded, 1, stride, 0, rng=rng)
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        x = nn.as_tensor(x)
        out = self.conv1(x).relu()
        out = self.conv2(out).relu()
        out = self.conv3(out)
        out = out + self.shortcut(x)
        return out.relu()


class ResNet(nn.Module):
    """Generic residual network parameterized by block type and stage layout.

    Parameters
    ----------
    block:
        :class:`BasicBlock` or :class:`BottleneckBlock`.
    stage_blocks:
        Number of residual blocks in each stage.
    stage_channels:
        Base channel count of each stage (before block expansion).
    num_classes:
        Output classes of the final linear classifier.
    in_channels:
        Input image channels.
    stem_stride:
        Stride of the stem convolution (2 for ImageNet-style stems).
    """

    def __init__(
        self,
        block,
        stage_blocks: Sequence[int],
        stage_channels: Sequence[int],
        num_classes: int = 10,
        in_channels: int = 3,
        stem_stride: int = 1,
        rng=None,
    ):
        super().__init__()
        if len(stage_blocks) != len(stage_channels):
            raise ValueError("stage_blocks and stage_channels must have equal length")
        self.block = block
        self.stem = _conv_bn(in_channels, stage_channels[0], 3, stem_stride, 1, rng=rng)
        stages: List[nn.Module] = []
        current = stage_channels[0]
        for stage_index, (count, channels) in enumerate(zip(stage_blocks, stage_channels)):
            blocks = []
            for block_index in range(count):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(block(current, channels, stride=stride, rng=rng))
                current = channels * block.expansion
            stages.append(nn.Sequential(*blocks))
        self.stages = nn.Sequential(*stages)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = QuantizedLinear(current, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x):
        x = nn.as_tensor(x)
        out = self.stem(x).relu()
        out = self.stages(out)
        out = self.pool(out)
        return self.classifier(out)


def resnet20(num_classes: int = 10, width: int = 16, in_channels: int = 3, rng=None) -> ResNet:
    """CIFAR-style ResNet-20: three stages of three basic blocks."""
    channels = (width, width * 2, width * 4)
    return ResNet(BasicBlock, (3, 3, 3), channels, num_classes=num_classes,
                  in_channels=in_channels, rng=rng)


def resnet20_uniform(num_classes: int = 10, width: int = 16, in_channels: int = 3, rng=None) -> ResNet:
    """ResNet-20 variant with a uniform channel width in every stage.

    Used for the layerwise precision experiment of Figure 9 (right), where the
    paper equalizes the filter layout of the first and second halves of the
    network so that precision placement is the only difference.
    """
    channels = (width, width, width)
    return ResNet(BasicBlock, (3, 3, 3), channels, num_classes=num_classes,
                  in_channels=in_channels, rng=rng)


def resnet18(num_classes: int = 10, width: int = 16, in_channels: int = 3, rng=None) -> ResNet:
    """ImageNet-style ResNet-18: four stages of two basic blocks."""
    channels = (width, width * 2, width * 4, width * 8)
    return ResNet(BasicBlock, (2, 2, 2, 2), channels, num_classes=num_classes,
                  in_channels=in_channels, stem_stride=1, rng=rng)


def resnet50(num_classes: int = 10, width: int = 8, in_channels: int = 3, rng=None) -> ResNet:
    """ImageNet-style ResNet-50: four stages of bottleneck blocks (3, 4, 6, 3)."""
    channels = (width, width * 2, width * 4, width * 8)
    return ResNet(BottleneckBlock, (3, 4, 6, 3), channels, num_classes=num_classes,
                  in_channels=in_channels, stem_stride=1, rng=rng)
