"""MobileNet-v2 style network built from inverted residual blocks.

Keeps the defining features of MobileNet-v2 -- depthwise separable
convolutions, expansion factors, and linear (non-activated) bottleneck
outputs with residual connections -- at reduced width so it trains on CPU.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .. import nn
from ..nn.quantized import QuantizedConv2d, QuantizedLinear

__all__ = ["InvertedResidual", "MobileNetV2", "mobilenet_v2"]


class InvertedResidual(nn.Module):
    """Expansion (1x1) -> depthwise (3x3) -> projection (1x1) block."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 expansion: int = 4, rng=None):
        super().__init__()
        hidden = in_channels * expansion
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expand = nn.Sequential(
            QuantizedConv2d(in_channels, hidden, 1, bias=False, rng=rng),
            nn.BatchNorm2d(hidden),
            nn.ReLU(),
        )
        self.depthwise = nn.Sequential(
            QuantizedConv2d(hidden, hidden, 3, stride=stride, padding=1, groups=hidden,
                            bias=False, rng=rng),
            nn.BatchNorm2d(hidden),
            nn.ReLU(),
        )
        self.project = nn.Sequential(
            QuantizedConv2d(hidden, out_channels, 1, bias=False, rng=rng),
            nn.BatchNorm2d(out_channels),
        )

    def forward(self, x):
        x = nn.as_tensor(x)
        out = self.expand(x)
        out = self.depthwise(out)
        out = self.project(out)
        if self.use_residual:
            out = out + x
        return out


class MobileNetV2(nn.Module):
    """Scaled-down MobileNet-v2 classifier."""

    def __init__(
        self,
        block_settings: Sequence[Tuple[int, int, int, int]] = ((4, 16, 2, 1), (4, 24, 2, 2), (4, 32, 2, 2)),
        num_classes: int = 10,
        in_channels: int = 3,
        stem_channels: int = 8,
        rng=None,
    ):
        """``block_settings`` rows are (expansion, channels, blocks, stride)."""
        super().__init__()
        self.stem = nn.Sequential(
            QuantizedConv2d(in_channels, stem_channels, 3, stride=1, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(stem_channels),
            nn.ReLU(),
        )
        blocks = []
        current = stem_channels
        for expansion, channels, count, stride in block_settings:
            for index in range(count):
                block_stride = stride if index == 0 else 1
                blocks.append(InvertedResidual(current, channels, stride=block_stride,
                                               expansion=expansion, rng=rng))
                current = channels
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.Sequential(
            QuantizedConv2d(current, current * 2, 1, bias=False, rng=rng),
            nn.BatchNorm2d(current * 2),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = QuantizedLinear(current * 2, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x):
        out = self.stem(nn.as_tensor(x))
        out = self.blocks(out)
        out = self.head(out)
        out = self.pool(out)
        return self.classifier(out)


def mobilenet_v2(num_classes: int = 10, width: int = 8, in_channels: int = 3, rng=None) -> MobileNetV2:
    """MobileNet-v2 with widths scaled by ``width`` (stem channel count)."""
    settings = (
        (4, width * 2, 2, 1),
        (4, width * 3, 2, 2),
        (4, width * 4, 2, 2),
    )
    return MobileNetV2(settings, num_classes=num_classes, in_channels=in_channels,
                       stem_channels=width, rng=rng)
