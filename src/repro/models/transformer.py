"""Encoder-decoder Transformer for sequence-to-sequence transduction.

The paper trains a 12-layer, 12-head, 768-dim Transformer on IWSLT14
German-English.  This implementation is architecture-faithful (token
embeddings + sinusoidal positions, pre-norm encoder/decoder stacks,
multi-head attention, tied output projection optional) but defaults to a
small configuration that learns the synthetic transduction task of
:mod:`repro.data.translation` in seconds on a CPU.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.attention import TransformerDecoderLayer, TransformerEncoderLayer, causal_mask, positional_encoding
from ..nn.quantized import QuantizedLinear

__all__ = ["Seq2SeqTransformer", "transformer_small", "transformer_base"]


class Seq2SeqTransformer(nn.Module):
    """Encoder-decoder Transformer producing per-position vocabulary logits."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 64,
        num_heads: int = 4,
        num_encoder_layers: int = 2,
        num_decoder_layers: int = 2,
        hidden_dim: Optional[int] = None,
        max_length: int = 64,
        dropout: float = 0.0,
        pad_index: int = 0,
        rng=None,
    ):
        super().__init__()
        hidden_dim = hidden_dim if hidden_dim is not None else embed_dim * 4
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.pad_index = pad_index
        self.max_length = max_length
        self.embedding = nn.Embedding(vocab_size, embed_dim, rng=rng)
        # A buffer (not a plain attribute) so Module.to() casts it with the
        # rest of the model state and checkpoints carry it.
        self.register_buffer("positional", positional_encoding(max_length, embed_dim))
        self.encoder_layers = nn.ModuleList(
            TransformerEncoderLayer(embed_dim, num_heads, hidden_dim, dropout, rng=rng)
            for _ in range(num_encoder_layers)
        )
        self.decoder_layers = nn.ModuleList(
            TransformerDecoderLayer(embed_dim, num_heads, hidden_dim, dropout, rng=rng)
            for _ in range(num_decoder_layers)
        )
        self.encoder_norm = nn.LayerNorm(embed_dim)
        self.decoder_norm = nn.LayerNorm(embed_dim)
        self.output_projection = QuantizedLinear(embed_dim, vocab_size, rng=rng)

    # ------------------------------------------------------------------ #
    def _embed(self, tokens: np.ndarray) -> nn.Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        length = tokens.shape[1]
        if length > self.max_length:
            raise ValueError(f"sequence length {length} exceeds max_length {self.max_length}")
        embedded = self.embedding(tokens) * np.sqrt(self.embed_dim)
        # The positional buffer is cast by Module.to(); the explicit dtype is
        # a no-copy no-op then, and guards inputs cast without the model.
        return embedded + nn.Tensor(self.positional[:length], dtype=embedded.data.dtype)

    def encode(self, src_tokens: np.ndarray) -> nn.Tensor:
        """Run the encoder stack over source tokens (batch, src_len)."""
        x = self._embed(src_tokens)
        for layer in self.encoder_layers:
            x = layer(x)
        return self.encoder_norm(x)

    def decode(self, tgt_tokens: np.ndarray, memory: nn.Tensor) -> nn.Tensor:
        """Run the decoder stack with a causal self-attention mask."""
        x = self._embed(tgt_tokens)
        mask = causal_mask(np.asarray(tgt_tokens).shape[1])
        for layer in self.decoder_layers:
            x = layer(x, memory, self_mask=mask)
        return self.decoder_norm(x)

    def forward(self, src_tokens: np.ndarray, tgt_tokens: np.ndarray) -> nn.Tensor:
        """Teacher-forced logits of shape (batch, tgt_len, vocab)."""
        memory = self.encode(src_tokens)
        decoded = self.decode(tgt_tokens, memory)
        return self.output_projection(decoded)

    def greedy_decode(self, src_tokens: np.ndarray, bos_index: int, eos_index: int,
                      max_length: Optional[int] = None) -> np.ndarray:
        """Greedy autoregressive decoding; returns generated token ids.

        Always runs in eval mode (training-only branches such as dropout are
        disabled for the duration of the decode) and restores the previous
        mode on exit, so generation is deterministic regardless of the
        caller's training state.
        """
        max_length = max_length if max_length is not None else self.max_length
        src_tokens = np.asarray(src_tokens, dtype=np.int64)
        batch = src_tokens.shape[0]
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                memory = self.encode(src_tokens)
                generated = np.full((batch, 1), bos_index, dtype=np.int64)
                finished = np.zeros(batch, dtype=bool)
                for _ in range(max_length - 1):
                    decoded = self.decode(generated, memory)
                    logits = self.output_projection(decoded).data[:, -1, :]
                    next_tokens = logits.argmax(axis=-1)
                    next_tokens = np.where(finished, self.pad_index, next_tokens)
                    generated = np.concatenate([generated, next_tokens[:, None]], axis=1)
                    finished = finished | (next_tokens == eos_index)
                    if finished.all():
                        break
        finally:
            self.train(was_training)
        return generated


def transformer_small(vocab_size: int, max_length: int = 32, rng=None) -> Seq2SeqTransformer:
    """A small configuration used by tests and quick benchmarks."""
    return Seq2SeqTransformer(vocab_size, embed_dim=32, num_heads=2, num_encoder_layers=2,
                              num_decoder_layers=2, max_length=max_length, rng=rng)


def transformer_base(vocab_size: int, max_length: int = 64, rng=None) -> Seq2SeqTransformer:
    """A deeper configuration closer to the paper's 12-layer model shape."""
    return Seq2SeqTransformer(vocab_size, embed_dim=64, num_heads=4, num_encoder_layers=4,
                              num_decoder_layers=4, max_length=max_length, rng=rng)
