"""Simple multi-layer perceptron used in quickstart examples and tests."""

from __future__ import annotations

from typing import Sequence

from .. import nn
from ..nn.quantized import QuantizedLinear

__all__ = ["MLP"]


class MLP(nn.Module):
    """Fully connected classifier with ReLU hidden layers.

    Built from :class:`~repro.nn.quantized.QuantizedLinear` layers so the
    same model can be trained in FP32 (identity scheme) or under any
    quantization scheme.
    """

    def __init__(self, in_features: int, hidden_sizes: Sequence[int], num_classes: int, rng=None):
        super().__init__()
        sizes = [in_features] + list(hidden_sizes)
        layers = []
        for in_size, out_size in zip(sizes[:-1], sizes[1:]):
            layers.append(QuantizedLinear(in_size, out_size, rng=rng))
            layers.append(nn.ReLU())
        layers.append(QuantizedLinear(sizes[-1], num_classes, rng=rng))
        self.layers = nn.Sequential(*layers)
        self.in_features = in_features
        self.num_classes = num_classes

    def forward(self, x):
        x = nn.as_tensor(x)
        if x.ndim > 2:
            x = x.flatten(1)
        return self.layers(x)
