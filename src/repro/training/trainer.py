"""Training loops for the three task families the paper evaluates.

Each trainer wires a precision schedule into an optimization loop:

1. before every mini-batch the schedule is told the current iteration so it
   can update the per-layer quantization schemes (Algorithm 1, or the
   temporal/layerwise switches of Figure 9),
2. the forward/backward pass runs through the quantized layers, and
3. the FP32 master weights are updated by the optimizer.

The trainers record per-epoch accuracy/BLEU/mAP curves which the
time-to-accuracy analysis (Figure 19/20) combines with the hardware
performance model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import nn, observability
from ..data.loader import DataLoader, cast_floating
from ..models.yolo import decode_predictions, yolo_loss
from ..nn.losses import cross_entropy, sequence_cross_entropy
from .metrics import accuracy, corpus_bleu, mean_average_precision
from .schedules import FP32Schedule, PrecisionSchedule

__all__ = ["NonFiniteLossError", "TrainingResult", "ClassificationTrainer",
           "Seq2SeqTrainer", "DetectionTrainer"]


class NonFiniteLossError(FloatingPointError):
    """Training produced a NaN/inf loss and ``abort_on_nonfinite`` is set.

    Raised at the offending step so quantized-training divergence fails
    fast with a diagnostic, instead of silently poisoning every later loss
    in :class:`TrainingResult`.
    """


@dataclass
class TrainingResult:
    """History of one training run."""

    schedule_name: str
    epochs: int = 0
    iterations: int = 0
    loss_history: List[float] = field(default_factory=list)
    train_metric_history: List[float] = field(default_factory=list)
    val_metric_history: List[float] = field(default_factory=list)
    precision_history: List[List[Dict[str, Optional[int]]]] = field(default_factory=list)
    epoch_time_history: List[float] = field(default_factory=list)

    @property
    def final_val_metric(self) -> float:
        return self.val_metric_history[-1] if self.val_metric_history else float("nan")

    @property
    def best_val_metric(self) -> float:
        return max(self.val_metric_history) if self.val_metric_history else float("nan")

    def epochs_to_reach(self, target: float) -> Optional[int]:
        """First epoch (1-based) whose validation metric reaches ``target``."""
        for epoch, value in enumerate(self.val_metric_history, start=1):
            if value >= target:
                return epoch
        return None

    @property
    def mean_step_time(self) -> float:
        """Average wall-clock seconds per optimization step across training."""
        if not self.epoch_time_history or not self.iterations:
            return float("nan")
        return sum(self.epoch_time_history) / self.iterations


class _BaseTrainer:
    """Shared plumbing: schedule preparation, iteration bookkeeping, dtype.

    ``compute_dtype`` selects the precision the forward/backward pass runs
    at.  ``None`` (the default) leaves the model and data untouched -- the
    bit-exact float64 path.  ``np.float32`` casts the model once
    (``Module.to``), re-aligns the optimizer state dtype, and casts every
    floating mini-batch on the way in, so the whole training step -- matrix
    products, quantization kernels, gradients, optimizer update -- runs in
    float32.  Master weights stay FP32-or-better either way, per the paper's
    setup (pass ``master_dtype=np.float64`` to the optimizer for a
    higher-precision master copy under float32 compute).
    """

    def __init__(self, model: nn.Module, optimizer: nn.Optimizer,
                 schedule: Optional[PrecisionSchedule] = None,
                 compute_dtype=None, abort_on_nonfinite: bool = False):
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule if schedule is not None else FP32Schedule()
        self.iteration = 0
        self.abort_on_nonfinite = abort_on_nonfinite
        self._step_started = None
        self._metrics_registry = None
        self._metrics = None
        self.compute_dtype = None if compute_dtype is None else np.dtype(compute_dtype)
        if self.compute_dtype is not None:
            self.model.to(self.compute_dtype)
            refresh = getattr(self.optimizer, "refresh_dtype", None)
            if refresh is not None:
                refresh()

    def _cast(self, array):
        """Cast a floating batch array to the compute dtype (no-op otherwise)."""
        return cast_floating(array, self.compute_dtype)

    def _prepare(self, iterations_per_epoch: int, epochs: int) -> None:
        total = max(iterations_per_epoch * epochs, 1)
        self.schedule.prepare(self.model, total)
        self.iteration = 0

    def _pre_step(self) -> None:
        self.schedule.on_iteration(self.iteration)
        self._step_started = (time.perf_counter()
                              if observability.enabled() else None)

    def _post_step(self) -> None:
        self.iteration += 1
        if self._step_started is not None:
            elapsed = time.perf_counter() - self._step_started
            steps, step_ms = self._train_metrics()[:2]
            steps.inc()
            step_ms.observe(elapsed * 1e3)

    def _train_metrics(self):
        """Lazily-created registry metrics, rebuilt if the registry is swapped."""
        registry = observability.registry()  # repro-lint: disable=RL003 -- lazy handle (re)build; callers gate
        if self._metrics is None or self._metrics_registry is not registry:
            labels = {"trainer": type(self).__name__,
                      "schedule": self.schedule.name}
            self._metrics = (
                registry.counter("training_steps_total",
                                 help="Optimization steps taken", **labels),
                registry.histogram("training_step_ms",
                                   help="Wall time per optimization step (ms)",
                                   **labels),
                registry.counter("training_epochs_total",
                                 help="Training epochs completed", **labels),
                registry.histogram("training_epoch_ms",
                                   help="Wall time per epoch (ms)", **labels),
                registry.gauge("training_last_loss",
                               help="Mean loss of the last completed epoch",
                               **labels),
            )
            self._metrics_registry = registry
        return self._metrics

    def _observe_epoch(self, epoch_seconds: float, mean_loss: float) -> None:
        """Per-epoch metrics; no-op unless the observability gate is on."""
        if not observability.enabled():
            return
        _, _, epochs, epoch_ms, last_loss = self._train_metrics()
        epochs.inc()
        epoch_ms.observe(epoch_seconds * 1e3)
        last_loss.set(mean_loss)

    def _check_loss(self, value: float, epoch: int, step: int) -> float:
        """Opt-in divergence guard: raise on the first NaN/inf loss."""
        if self.abort_on_nonfinite and not np.isfinite(value):
            raise NonFiniteLossError(
                f"non-finite loss {value!r} at epoch {epoch + 1}, step {step + 1} "
                f"(global iteration {self.iteration}) under schedule "
                f"{self.schedule.name!r}: training diverged -- lower the learning "
                "rate, widen the mantissa/exponent budget, or disable "
                "abort_on_nonfinite to keep going")
        return value


class ClassificationTrainer(_BaseTrainer):
    """Image-classification training loop (CNNs and MLPs)."""

    def __init__(self, model: nn.Module, optimizer: nn.Optimizer,
                 schedule: Optional[PrecisionSchedule] = None,
                 loss_fn: Callable = cross_entropy,
                 compute_dtype=None, abort_on_nonfinite: bool = False):
        super().__init__(model, optimizer, schedule, compute_dtype=compute_dtype,
                         abort_on_nonfinite=abort_on_nonfinite)
        self.loss_fn = loss_fn

    def evaluate(self, loader: DataLoader) -> float:
        """Validation accuracy (percent)."""
        was_training = self.model.training
        self.model.eval()
        correct_weighted = 0.0
        total = 0
        with nn.no_grad():
            for inputs, labels in loader:
                logits = self.model(self._cast(inputs))
                batch = len(labels)
                correct_weighted += accuracy(logits.data, labels) * batch
                total += batch
        self.model.train(was_training)
        return correct_weighted / max(total, 1)

    def fit(self, train_loader: DataLoader, val_loader: Optional[DataLoader] = None,
            epochs: int = 1, log_fn: Optional[Callable[[str], None]] = None,
            lr_scheduler=None) -> TrainingResult:
        self._prepare(len(train_loader), epochs)
        result = TrainingResult(schedule_name=self.schedule.name)
        self.model.train()
        for epoch in range(epochs):
            epoch_start = time.perf_counter()
            epoch_losses = []
            epoch_accuracy = []
            for inputs, labels in train_loader:
                self._pre_step()
                logits = self.model(self._cast(inputs))
                loss = self.loss_fn(logits, labels)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(self._check_loss(loss.item(), epoch, len(epoch_losses)))
                epoch_accuracy.append(accuracy(logits.data, labels))
                self._post_step()
            result.epoch_time_history.append(time.perf_counter() - epoch_start)
            result.loss_history.append(float(np.mean(epoch_losses)))
            self._observe_epoch(result.epoch_time_history[-1], result.loss_history[-1])
            result.train_metric_history.append(float(np.mean(epoch_accuracy)))
            if val_loader is not None:
                result.val_metric_history.append(self.evaluate(val_loader))
            result.precision_history.append(self.schedule.precision_snapshot())
            result.epochs = epoch + 1
            result.iterations = self.iteration
            if lr_scheduler is not None:
                lr_scheduler.step()
            if log_fn is not None:
                val = result.val_metric_history[-1] if result.val_metric_history else float("nan")
                log_fn(f"epoch {epoch + 1}/{epochs} loss={result.loss_history[-1]:.4f} "
                       f"train_acc={result.train_metric_history[-1]:.2f}% val_acc={val:.2f}%")
        return result


class Seq2SeqTrainer(_BaseTrainer):
    """Transformer training loop for the synthetic transduction task."""

    def __init__(self, model, optimizer: nn.Optimizer,
                 schedule: Optional[PrecisionSchedule] = None, pad_index: int = 0,
                 compute_dtype=None, abort_on_nonfinite: bool = False):
        super().__init__(model, optimizer, schedule, compute_dtype=compute_dtype,
                         abort_on_nonfinite=abort_on_nonfinite)
        self.pad_index = pad_index

    def evaluate_bleu(self, dataset, max_samples: int = 64) -> float:
        """Greedy-decode a validation subset and score corpus BLEU."""
        was_training = self.model.training
        self.model.eval()
        count = min(len(dataset), max_samples)
        sources = dataset.sources[:count]
        references = dataset.reference_sentences(range(count))
        generated = self.model.greedy_decode(sources, dataset.bos_index, dataset.eos_index,
                                             max_length=dataset.sequence_length)
        candidates = []
        for row in generated:
            tokens = []
            for token in row[1:]:
                if token == dataset.eos_index or token == self.pad_index:
                    break
                tokens.append(int(token))
            candidates.append(tokens)
        self.model.train(was_training)
        return corpus_bleu(candidates, references)

    def fit(self, train_dataset, val_dataset=None, epochs: int = 1, batch_size: int = 16,
            log_fn: Optional[Callable[[str], None]] = None, lr_scheduler=None) -> TrainingResult:
        loader = DataLoader(train_dataset, batch_size=batch_size, shuffle=True)
        self._prepare(len(loader), epochs)
        result = TrainingResult(schedule_name=self.schedule.name)
        self.model.train()
        for epoch in range(epochs):
            epoch_start = time.perf_counter()
            epoch_losses = []
            for sources, (decoder_inputs, decoder_targets) in loader:
                self._pre_step()
                logits = self.model(sources, decoder_inputs)
                loss = sequence_cross_entropy(logits, decoder_targets, pad_index=self.pad_index)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(self._check_loss(loss.item(), epoch, len(epoch_losses)))
                self._post_step()
            result.epoch_time_history.append(time.perf_counter() - epoch_start)
            result.loss_history.append(float(np.mean(epoch_losses)))
            self._observe_epoch(result.epoch_time_history[-1], result.loss_history[-1])
            result.train_metric_history.append(-result.loss_history[-1])
            if val_dataset is not None:
                result.val_metric_history.append(self.evaluate_bleu(val_dataset))
            result.precision_history.append(self.schedule.precision_snapshot())
            result.epochs = epoch + 1
            result.iterations = self.iteration
            if lr_scheduler is not None:
                lr_scheduler.step()
            if log_fn is not None:
                val = result.val_metric_history[-1] if result.val_metric_history else float("nan")
                log_fn(f"epoch {epoch + 1}/{epochs} loss={result.loss_history[-1]:.4f} BLEU={val:.2f}")
        return result


class DetectionTrainer(_BaseTrainer):
    """YOLO-style detection training loop."""

    def __init__(self, model, optimizer: nn.Optimizer,
                 schedule: Optional[PrecisionSchedule] = None, confidence_threshold: float = 0.5,
                 compute_dtype=None, abort_on_nonfinite: bool = False):
        super().__init__(model, optimizer, schedule, compute_dtype=compute_dtype,
                         abort_on_nonfinite=abort_on_nonfinite)
        self.confidence_threshold = confidence_threshold

    def evaluate_map(self, dataset) -> float:
        """mAP@0.5 on a detection dataset."""
        was_training = self.model.training
        self.model.eval()
        images, _ = dataset.arrays()
        with nn.no_grad():
            raw = self.model(self._cast(images)).data
        predictions = decode_predictions(raw, threshold=self.confidence_threshold)
        ground_truth = dataset.ground_truth_boxes()
        self.model.train(was_training)
        return mean_average_precision(predictions, ground_truth, dataset.num_classes)

    def fit(self, train_dataset, val_dataset=None, epochs: int = 1, batch_size: int = 16,
            log_fn: Optional[Callable[[str], None]] = None, lr_scheduler=None) -> TrainingResult:
        loader = DataLoader(train_dataset, batch_size=batch_size, shuffle=True)
        self._prepare(len(loader), epochs)
        result = TrainingResult(schedule_name=self.schedule.name)
        self.model.train()
        for epoch in range(epochs):
            epoch_start = time.perf_counter()
            epoch_losses = []
            for images, targets in loader:
                self._pre_step()
                predictions = self.model(self._cast(images))
                loss = yolo_loss(predictions, targets)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(self._check_loss(loss.item(), epoch, len(epoch_losses)))
                self._post_step()
            result.epoch_time_history.append(time.perf_counter() - epoch_start)
            result.loss_history.append(float(np.mean(epoch_losses)))
            self._observe_epoch(result.epoch_time_history[-1], result.loss_history[-1])
            result.train_metric_history.append(-result.loss_history[-1])
            if val_dataset is not None:
                result.val_metric_history.append(self.evaluate_map(val_dataset))
            result.precision_history.append(self.schedule.precision_snapshot())
            result.epochs = epoch + 1
            result.iterations = self.iteration
            if lr_scheduler is not None:
                lr_scheduler.step()
            if log_fn is not None:
                val = result.val_metric_history[-1] if result.val_metric_history else float("nan")
                log_fn(f"epoch {epoch + 1}/{epochs} loss={result.loss_history[-1]:.4f} mAP={val:.2f}")
        return result
