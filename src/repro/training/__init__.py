"""Quantized training loops, precision schedules, metrics and TTA analysis."""

from .metrics import accuracy, bleu, corpus_bleu, iou, mean_average_precision, top_k_accuracy
from .schedules import (
    FASTSchedule,
    FixedBFPSchedule,
    FormatSchedule,
    FP32Schedule,
    LayerwiseSchedule,
    PrecisionSchedule,
    TemporalSchedule,
    build_schedule,
)
from .trainer import (
    ClassificationTrainer,
    DetectionTrainer,
    NonFiniteLossError,
    Seq2SeqTrainer,
    TrainingResult,
)
from .tta import TTAEntry, energy_to_accuracy, iterations_to_target, normalize_entries, time_to_accuracy

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "bleu",
    "corpus_bleu",
    "iou",
    "mean_average_precision",
    "PrecisionSchedule",
    "FP32Schedule",
    "FormatSchedule",
    "FixedBFPSchedule",
    "TemporalSchedule",
    "LayerwiseSchedule",
    "FASTSchedule",
    "build_schedule",
    "ClassificationTrainer",
    "Seq2SeqTrainer",
    "DetectionTrainer",
    "TrainingResult",
    "NonFiniteLossError",
    "TTAEntry",
    "iterations_to_target",
    "time_to_accuracy",
    "normalize_entries",
    "energy_to_accuracy",
]
