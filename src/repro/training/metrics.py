"""Evaluation metrics: classification accuracy, BLEU, and detection mAP.

These are the three metrics of Table II (validation accuracy for CNNs, test
BLEU for the Transformer, test mAP for YOLOv2).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "bleu", "corpus_bleu", "iou", "mean_average_precision"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy in percent."""
    logits = np.asarray(logits)
    labels = np.asarray(labels).reshape(-1)
    predictions = logits.reshape(len(labels), -1).argmax(axis=-1)
    return float((predictions == labels).mean() * 100.0)


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k classification accuracy in percent."""
    logits = np.asarray(logits)
    labels = np.asarray(labels).reshape(-1)
    top_k = np.argsort(-logits.reshape(len(labels), -1), axis=-1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=-1)
    return float(hits.mean() * 100.0)


# --------------------------------------------------------------------------- #
# BLEU
# --------------------------------------------------------------------------- #
def _ngram_counts(tokens: Sequence[int], order: int) -> Counter:
    return Counter(tuple(tokens[i:i + order]) for i in range(len(tokens) - order + 1))


def bleu(candidate: Sequence[int], reference: Sequence[int], max_order: int = 4) -> float:
    """Sentence-level BLEU with add-one smoothing, scaled to [0, 100]."""
    return corpus_bleu([candidate], [reference], max_order=max_order)


def corpus_bleu(candidates: Sequence[Sequence[int]], references: Sequence[Sequence[int]],
                max_order: int = 4) -> float:
    """Corpus BLEU (n-gram precision with brevity penalty), scaled to [0, 100].

    Add-one smoothing is applied to higher-order precisions so short synthetic
    sentences do not collapse the score to zero.
    """
    if len(candidates) != len(references):
        raise ValueError("candidates and references must have the same length")
    matches = np.zeros(max_order)
    totals = np.zeros(max_order)
    candidate_length = 0
    reference_length = 0
    for candidate, reference in zip(candidates, references):
        candidate = list(candidate)
        reference = list(reference)
        candidate_length += len(candidate)
        reference_length += len(reference)
        for order in range(1, max_order + 1):
            candidate_counts = _ngram_counts(candidate, order)
            reference_counts = _ngram_counts(reference, order)
            overlap = sum(min(count, reference_counts[gram]) for gram, count in candidate_counts.items())
            matches[order - 1] += overlap
            totals[order - 1] += max(len(candidate) - order + 1, 0)

    precisions = []
    for order in range(max_order):
        if totals[order] == 0:
            precisions.append(0.0)
        elif order == 0:
            precisions.append(matches[order] / totals[order])
        else:
            precisions.append((matches[order] + 1.0) / (totals[order] + 1.0))
    if min(precisions) <= 0:
        return 0.0
    log_precision = sum(math.log(p) for p in precisions) / max_order
    if candidate_length == 0:
        return 0.0
    brevity = 1.0 if candidate_length > reference_length else math.exp(1.0 - reference_length / candidate_length)
    return float(100.0 * brevity * math.exp(log_precision))


# --------------------------------------------------------------------------- #
# Detection mAP
# --------------------------------------------------------------------------- #
def iou(box_a: Tuple[float, float, float, float], box_b: Tuple[float, float, float, float]) -> float:
    """Intersection-over-union of two (x_center, y_center, width, height) boxes."""
    ax0, ay0 = box_a[0] - box_a[2] / 2, box_a[1] - box_a[3] / 2
    ax1, ay1 = box_a[0] + box_a[2] / 2, box_a[1] + box_a[3] / 2
    bx0, by0 = box_b[0] - box_b[2] / 2, box_b[1] - box_b[3] / 2
    bx1, by1 = box_b[0] + box_b[2] / 2, box_b[1] + box_b[3] / 2
    inter_w = max(0.0, min(ax1, bx1) - max(ax0, bx0))
    inter_h = max(0.0, min(ay1, by1) - max(ay0, by0))
    intersection = inter_w * inter_h
    union = box_a[2] * box_a[3] + box_b[2] * box_b[3] - intersection
    if union <= 0:
        return 0.0
    return intersection / union


def mean_average_precision(
    predictions: List[List[Tuple[float, float, float, float, int, float]]],
    ground_truth: List[List[Tuple[float, float, float, float, int]]],
    num_classes: int,
    iou_threshold: float = 0.5,
) -> float:
    """mAP at a fixed IoU threshold, scaled to [0, 100].

    ``predictions[i]`` holds (x, y, w, h, class_id, confidence) tuples for
    image ``i``; ``ground_truth[i]`` holds (x, y, w, h, class_id) tuples.
    Average precision per class uses all-point interpolation.
    """
    if len(predictions) != len(ground_truth):
        raise ValueError("predictions and ground_truth must cover the same images")
    average_precisions = []
    for class_id in range(num_classes):
        detections = []
        total_ground_truth = 0
        for image_index, (preds, gts) in enumerate(zip(predictions, ground_truth)):
            class_gts = [g for g in gts if g[4] == class_id]
            total_ground_truth += len(class_gts)
            for pred in preds:
                if pred[4] == class_id:
                    detections.append((pred[5], image_index, pred[:4]))
        if total_ground_truth == 0:
            continue
        detections.sort(key=lambda item: -item[0])
        matched: Dict[Tuple[int, int], bool] = {}
        true_positive = np.zeros(len(detections))
        false_positive = np.zeros(len(detections))
        for det_index, (_, image_index, box) in enumerate(detections):
            gts = [g for g in ground_truth[image_index] if g[4] == class_id]
            best_iou, best_gt = 0.0, -1
            for gt_index, gt in enumerate(gts):
                candidate_iou = iou(box, gt[:4])
                if candidate_iou > best_iou:
                    best_iou, best_gt = candidate_iou, gt_index
            if best_iou >= iou_threshold and not matched.get((image_index, best_gt), False):
                true_positive[det_index] = 1.0
                matched[(image_index, best_gt)] = True
            else:
                false_positive[det_index] = 1.0
        cumulative_tp = np.cumsum(true_positive)
        cumulative_fp = np.cumsum(false_positive)
        recall = cumulative_tp / total_ground_truth
        precision = cumulative_tp / np.maximum(cumulative_tp + cumulative_fp, 1e-9)
        # All-point interpolation.
        ap = 0.0
        for threshold in np.linspace(0, 1, 101):
            mask = recall >= threshold
            ap += precision[mask].max() if mask.any() else 0.0
        average_precisions.append(ap / 101.0)
    if not average_precisions:
        return 0.0
    return float(np.mean(average_precisions) * 100.0)
