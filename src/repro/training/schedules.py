"""Trainer-facing precision schedules.

A schedule owns the quantization schemes attached to a model's quantized
layers and updates them as training progresses.  It is the glue between the
:mod:`repro.core.precision_policy` policies (which decide mantissa widths)
and the :mod:`repro.nn.quantized` layers (which apply them around their
matrix products).

Schedules provided, matching the paper's experiments:

* :class:`FP32Schedule` -- no quantization (baseline).
* :class:`FormatSchedule` -- a fixed scalar/block format for every layer
  (used for the Table II format sweep: bfloat16, INT8, MSFP-12, ...).
* :class:`FixedBFPSchedule` -- BFP with a fixed mantissa width (LowBFP,
  MidBFP, HighBFP).
* :class:`TemporalSchedule` / :class:`LayerwiseSchedule` -- the Figure 9
  Low-to-High / High-to-Low studies.
* :class:`FASTSchedule` -- FAST-Adaptive (Algorithm 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.bfp import BFPConfig
from ..core.precision_policy import (
    FASTAdaptivePolicy,
    LayerwisePrecisionPolicy,
    TemporalPrecisionPolicy,
)
from ..core.rounding import NoisePool
from ..formats.base import NumberFormat, TensorKind
from ..formats.registry import get_format
from ..nn.modules import Module
from ..nn.quantized import (
    BFPScheme,
    FASTScheme,
    FormatScheme,
    IdentityScheme,
    quantized_modules,
)

__all__ = [
    "PrecisionSchedule",
    "FP32Schedule",
    "FormatSchedule",
    "FixedBFPSchedule",
    "TemporalSchedule",
    "LayerwiseSchedule",
    "FASTSchedule",
    "build_schedule",
]

_DEFAULT_BFP_CONFIG = BFPConfig(exponent_bits=3, group_size=16)


def _layer_noise_source(seed: int, index: int, stochastic: bool, pooled: bool):
    """Per-layer noise source for stochastic gradient rounding.

    Pooled sources draw noise in large refill batches
    (:class:`~repro.core.rounding.NoisePool`), which removes the per-call
    ``Generator.integers`` bound from the quantized training step while
    staying seed-deterministic (same seed -> same stream, independent of how
    gradient shapes partition the draws).
    """
    if stochastic and pooled:
        return NoisePool(seed + index)
    return np.random.default_rng(seed + index)


class PrecisionSchedule:
    """Base schedule: attach schemes to a model, update them per iteration."""

    #: Name reported in benchmark tables.
    name = "abstract"

    def __init__(self):
        self.layers: List[Module] = []
        self.total_iterations = 1

    def prepare(self, model: Module, total_iterations: int) -> None:
        """Discover quantized layers and attach the initial schemes."""
        self.layers = quantized_modules(model)
        for index, layer in enumerate(self.layers):
            layer.layer_index = index
        self.total_iterations = max(int(total_iterations), 1)
        self._attach()

    def _attach(self) -> None:
        raise NotImplementedError

    def on_iteration(self, iteration: int) -> None:
        """Called by trainers before every optimization step."""

    def precision_snapshot(self) -> List[Dict[str, Optional[int]]]:
        """Current (W, A, G) mantissa widths per layer, for logging."""
        return [layer.scheme.precision_setting() for layer in self.layers]


class FP32Schedule(PrecisionSchedule):
    """Full precision: all layers keep the identity scheme."""

    name = "fp32"

    def _attach(self) -> None:
        for layer in self.layers:
            layer.scheme = IdentityScheme()


class FormatSchedule(PrecisionSchedule):
    """Quantize every layer with one fixed :class:`NumberFormat`."""

    def __init__(self, number_format: Union[str, NumberFormat], seed: int = 0):
        super().__init__()
        if isinstance(number_format, str):
            number_format = get_format(number_format)
        self.number_format = number_format
        self.name = number_format.name
        self.seed = seed

    def _attach(self) -> None:
        for index, layer in enumerate(self.layers):
            if self.number_format.name == "fp32":
                layer.scheme = IdentityScheme()
            else:
                rng = np.random.default_rng(self.seed + index)
                layer.scheme = FormatScheme(self.number_format, rng=rng)


class FixedBFPSchedule(PrecisionSchedule):
    """BFP with a fixed mantissa width for W, A and G in every layer."""

    def __init__(self, mantissa_bits: int, config: Optional[BFPConfig] = None,
                 stochastic_gradients: bool = True, seed: int = 0,
                 noise_pool: bool = True):
        super().__init__()
        self.mantissa_bits = mantissa_bits
        self.config = config if config is not None else _DEFAULT_BFP_CONFIG
        self.stochastic_gradients = stochastic_gradients
        self.seed = seed
        self.noise_pool = noise_pool
        self.name = f"bfp_m{mantissa_bits}"

    def _attach(self) -> None:
        for index, layer in enumerate(self.layers):
            rng = _layer_noise_source(self.seed, index, self.stochastic_gradients,
                                      self.noise_pool)
            layer.scheme = BFPScheme(
                config=self.config,
                weight_bits=self.mantissa_bits,
                activation_bits=self.mantissa_bits,
                gradient_bits=self.mantissa_bits,
                stochastic_gradients=self.stochastic_gradients,
                rng=rng,
            )


class _PolicyDrivenSchedule(PrecisionSchedule):
    """Shared implementation for temporal/layerwise policy schedules."""

    def __init__(self, low_bits: int, high_bits: int, config: Optional[BFPConfig],
                 stochastic_gradients: bool, seed: int, noise_pool: bool = True):
        super().__init__()
        self.low_bits = low_bits
        self.high_bits = high_bits
        self.config = config if config is not None else _DEFAULT_BFP_CONFIG
        self.stochastic_gradients = stochastic_gradients
        self.seed = seed
        self.noise_pool = noise_pool
        self.policy = None

    def _build_policy(self):
        raise NotImplementedError

    def _attach(self) -> None:
        self.policy = self._build_policy()
        for index, layer in enumerate(self.layers):
            rng = _layer_noise_source(self.seed, index, self.stochastic_gradients,
                                      self.noise_pool)
            layer.scheme = BFPScheme(
                config=self.config,
                weight_bits=self.low_bits,
                activation_bits=self.low_bits,
                gradient_bits=self.low_bits,
                stochastic_gradients=self.stochastic_gradients,
                rng=rng,
            )
        self.on_iteration(0)

    def on_iteration(self, iteration: int) -> None:
        for layer in self.layers:
            for kind in (TensorKind.WEIGHT, TensorKind.ACTIVATION, TensorKind.GRADIENT):
                bits = self.policy.select(kind, layer.layer_index, iteration)
                layer.scheme.set_bits(kind, bits)


class TemporalSchedule(_PolicyDrivenSchedule):
    """Switch all layers between two precisions at the training midpoint (Fig. 9 left)."""

    def __init__(self, low_to_high: bool = True, low_bits: int = 2, high_bits: int = 4,
                 switch_fraction: float = 0.5, config: Optional[BFPConfig] = None,
                 stochastic_gradients: bool = True, seed: int = 0, noise_pool: bool = True):
        super().__init__(low_bits, high_bits, config, stochastic_gradients, seed,
                         noise_pool=noise_pool)
        self.low_to_high = low_to_high
        self.switch_fraction = switch_fraction
        self.name = "temporal_low_to_high" if low_to_high else "temporal_high_to_low"

    def _build_policy(self):
        return TemporalPrecisionPolicy(
            total_iterations=self.total_iterations,
            low_bits=self.low_bits,
            high_bits=self.high_bits,
            switch_fraction=self.switch_fraction,
            low_to_high=self.low_to_high,
        )


class LayerwiseSchedule(_PolicyDrivenSchedule):
    """Different precisions for the shallow and deep network halves (Fig. 9 right)."""

    def __init__(self, low_to_high: bool = True, low_bits: int = 2, high_bits: int = 4,
                 switch_fraction: float = 0.5, config: Optional[BFPConfig] = None,
                 stochastic_gradients: bool = True, seed: int = 0, noise_pool: bool = True):
        super().__init__(low_bits, high_bits, config, stochastic_gradients, seed,
                         noise_pool=noise_pool)
        self.low_to_high = low_to_high
        self.switch_fraction = switch_fraction
        self.name = "layerwise_low_to_high" if low_to_high else "layerwise_high_to_low"

    def _build_policy(self):
        return LayerwisePrecisionPolicy(
            total_layers=max(len(self.layers), 1),
            low_bits=self.low_bits,
            high_bits=self.high_bits,
            switch_fraction=self.switch_fraction,
            low_to_high=self.low_to_high,
        )


class FASTSchedule(PrecisionSchedule):
    """FAST-Adaptive (Algorithm 1): per-tensor, per-layer, per-iteration precision."""

    name = "fast_adaptive"

    def __init__(self, alpha: float = 0.6, beta: float = 0.3, low_bits: int = 2,
                 high_bits: int = 4, config: Optional[BFPConfig] = None,
                 stochastic_gradients: bool = True, evaluation_interval: int = 1, seed: int = 0,
                 noise_pool: bool = True):
        super().__init__()
        self.alpha = alpha
        self.beta = beta
        self.low_bits = low_bits
        self.high_bits = high_bits
        self.config = config if config is not None else _DEFAULT_BFP_CONFIG
        self.stochastic_gradients = stochastic_gradients
        self.evaluation_interval = evaluation_interval
        self.seed = seed
        self.noise_pool = noise_pool
        self.policy: Optional[FASTAdaptivePolicy] = None

    def _attach(self) -> None:
        self.policy = FASTAdaptivePolicy(
            total_layers=max(len(self.layers), 1),
            total_iterations=self.total_iterations,
            alpha=self.alpha,
            beta=self.beta,
            low_bits=self.low_bits,
            high_bits=self.high_bits,
            config=self.config,
            evaluation_interval=self.evaluation_interval,
        )
        for index, layer in enumerate(self.layers):
            rng = _layer_noise_source(self.seed, index, self.stochastic_gradients,
                                      self.noise_pool)
            layer.scheme = FASTScheme(
                policy=self.policy,
                layer_index=index,
                config=self.config,
                stochastic_gradients=self.stochastic_gradients,
                rng=rng,
            )

    def on_iteration(self, iteration: int) -> None:
        for layer in self.layers:
            layer.scheme.iteration = iteration

    def setting_history(self) -> Dict[Tuple[int, int], Tuple[int, int, int]]:
        """(layer, iteration) -> (W, A, G) decisions, for the Figure 17 heatmap."""
        if self.policy is None:
            return {}
        return self.policy.setting_history()


def build_schedule(name: str, **kwargs) -> PrecisionSchedule:
    """Construct a schedule from a short name used by benchmarks.

    Recognized names: ``fp32``, ``fast_adaptive``, ``low_bfp``, ``mid_bfp``,
    ``high_bfp``, ``temporal_low_to_high``, ``temporal_high_to_low``,
    ``layerwise_low_to_high``, ``layerwise_high_to_low``, plus any registered
    number-format name (``bfloat16``, ``int8``, ``msfp12``, ...).
    """
    bfp_bits = {"low_bfp": 2, "mid_bfp": 3, "high_bfp": 4}
    if name == "fp32":
        return FP32Schedule()
    if name == "fast_adaptive":
        return FASTSchedule(**kwargs)
    if name in bfp_bits:
        return FixedBFPSchedule(bfp_bits[name], **kwargs)
    if name.startswith("temporal_"):
        return TemporalSchedule(low_to_high=name.endswith("low_to_high"), **kwargs)
    if name.startswith("layerwise_"):
        return LayerwiseSchedule(low_to_high=name.endswith("low_to_high"), **kwargs)
    return FormatSchedule(name, **kwargs)
