"""Time-to-accuracy (TTA) analysis (Figures 19 and 20).

The paper's headline result is that FAST reaches a target validation accuracy
2-6x faster than systems built on other number formats.  TTA combines two
quantities:

* iterations-to-accuracy, taken from a training run's validation-metric
  curve (how many iterations the format needs to hit the target), and
* seconds-per-iteration on the hardware platform, taken from the
  :mod:`repro.hardware.performance` model (how fast the iso-area system built
  for that format executes one training iteration).

This module provides the bookkeeping: interpolation of the accuracy curve,
TTA computation, and normalization against a baseline entry (the paper
normalizes to FAST-Adaptive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["TTAEntry", "iterations_to_target", "time_to_accuracy", "normalize_entries", "energy_to_accuracy"]


@dataclass
class TTAEntry:
    """One system's time/energy to reach the target metric."""

    name: str
    reached: bool
    iterations: Optional[float]
    seconds_per_iteration: float
    power_watts: float

    @property
    def total_seconds(self) -> Optional[float]:
        if not self.reached or self.iterations is None:
            return None
        return self.iterations * self.seconds_per_iteration

    @property
    def total_energy_joules(self) -> Optional[float]:
        seconds = self.total_seconds
        if seconds is None:
            return None
        return seconds * self.power_watts


def iterations_to_target(metric_curve: Sequence[float], target: float,
                         iterations_per_point: float = 1.0) -> Optional[float]:
    """Iterations needed for ``metric_curve`` to first reach ``target``.

    Linear interpolation between curve points gives sub-epoch resolution.
    Returns ``None`` when the curve never reaches the target.
    """
    curve = np.asarray(metric_curve, dtype=np.float64)
    if curve.size == 0:
        return None
    for index, value in enumerate(curve):
        if value >= target:
            if index == 0:
                return iterations_per_point
            previous = curve[index - 1]
            span = value - previous
            fraction = 1.0 if span <= 0 else (target - previous) / span
            return (index + fraction) * iterations_per_point
    return None


def time_to_accuracy(name: str, metric_curve: Sequence[float], target: float,
                     seconds_per_iteration: float, power_watts: float = 1.0,
                     iterations_per_point: float = 1.0) -> TTAEntry:
    """Build a :class:`TTAEntry` from an accuracy curve and hardware rates."""
    iterations = iterations_to_target(metric_curve, target, iterations_per_point)
    return TTAEntry(
        name=name,
        reached=iterations is not None,
        iterations=iterations,
        seconds_per_iteration=seconds_per_iteration,
        power_watts=power_watts,
    )


def normalize_entries(entries: Sequence[TTAEntry], baseline_name: str) -> Dict[str, Dict[str, Optional[float]]]:
    """Normalize training time and energy against ``baseline_name``.

    Returns ``{name: {"time": t, "energy": e, "reached": bool}}`` where the
    baseline has time = energy = 1.0 and unreached entries carry ``None``
    (rendered as "N/A", as in Figure 20).
    """
    baseline = next((entry for entry in entries if entry.name == baseline_name), None)
    if baseline is None or not baseline.reached:
        raise ValueError(f"baseline {baseline_name!r} missing or did not reach the target")
    base_time = baseline.total_seconds
    base_energy = baseline.total_energy_joules
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for entry in entries:
        if entry.reached:
            table[entry.name] = {
                "time": entry.total_seconds / base_time,
                "energy": entry.total_energy_joules / base_energy,
                "reached": True,
            }
        else:
            table[entry.name] = {"time": None, "energy": None, "reached": False}
    return table


def energy_to_accuracy(entries: Sequence[TTAEntry]) -> Dict[str, Optional[float]]:
    """Convenience accessor: name -> absolute energy (J) or None."""
    return {entry.name: entry.total_energy_joules for entry in entries}
