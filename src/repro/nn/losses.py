"""Loss functions for classification, regression, sequence and detection tasks."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .functional import one_hot
from .tensor import Tensor, as_tensor

__all__ = [
    "cross_entropy",
    "mse_loss",
    "l1_loss",
    "binary_cross_entropy_with_logits",
    "sequence_cross_entropy",
    "smooth_l1_loss",
]


def cross_entropy(logits: Tensor, targets, label_smoothing: float = 0.0) -> Tensor:
    """Softmax cross-entropy over the last axis, averaged over the batch.

    ``targets`` holds integer class indices of shape ``logits.shape[:-1]``.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    encoded = one_hot(targets.reshape(-1), num_classes, dtype=flat_logits.data.dtype)
    if label_smoothing > 0.0:
        encoded = encoded * (1.0 - label_smoothing) + label_smoothing / num_classes
    log_probs = flat_logits.log_softmax(axis=-1)
    loss = -(log_probs * Tensor(encoded)).sum(axis=-1)
    return loss.mean()


def sequence_cross_entropy(logits: Tensor, targets, pad_index: Optional[int] = None,
                           label_smoothing: float = 0.0) -> Tensor:
    """Token-level cross-entropy that ignores padding positions.

    ``logits`` has shape (batch, length, vocab); ``targets`` has shape
    (batch, length).  Positions equal to ``pad_index`` contribute nothing.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    encoded = one_hot(flat_targets, vocab, dtype=flat_logits.data.dtype)
    if label_smoothing > 0.0:
        encoded = encoded * (1.0 - label_smoothing) + label_smoothing / vocab
    # The padding mask follows the logits dtype so a float32 pipeline is not
    # upcast by the mask multiply (float64 logits keep a float64 mask).
    mask_dtype = flat_logits.data.dtype
    if pad_index is not None:
        mask = (flat_targets != pad_index).astype(mask_dtype)
    else:
        mask = np.ones_like(flat_targets, dtype=mask_dtype)
    log_probs = flat_logits.log_softmax(axis=-1)
    token_loss = -(log_probs * Tensor(encoded)).sum(axis=-1)
    total = (token_loss * Tensor(mask)).sum()
    count = max(float(mask.sum()), 1.0)
    return total * (1.0 / count)


def _as_target(target, like: Tensor) -> Tensor:
    """Tensor-ify a regression target at the prediction's dtype.

    Plain arrays (the common case: float64 labels against a float32 model)
    are cast once so the loss runs at the compute dtype; Tensor targets are
    left untouched and follow NumPy promotion as before.
    """
    if isinstance(target, Tensor):
        return target
    return Tensor(target, dtype=like.data.dtype)


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = _as_target(target, prediction)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error."""
    prediction = as_tensor(prediction)
    target = _as_target(target, prediction)
    return (prediction - target).abs().mean()


def smooth_l1_loss(prediction: Tensor, target, beta: float = 1.0) -> Tensor:
    """Huber-style smooth L1 loss used for box regression."""
    prediction = as_tensor(prediction)
    target = _as_target(target, prediction)
    diff = (prediction - target).abs()
    quadratic = diff.clip(0.0, beta)
    linear = diff - quadratic
    return (quadratic * quadratic * (0.5 / beta) + linear).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets, weight: Optional[np.ndarray] = None) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits."""
    logits = as_tensor(logits)
    targets = _as_target(targets, logits)
    # log(1 + exp(-|x|)) + max(x, 0) - x * t, the standard stable form.
    positive_part = logits.clip(0.0, np.inf)
    loss = positive_part - logits * targets + (1.0 + (-logits.abs()).exp()).log()
    if weight is not None:
        # Per-element weights follow the loss dtype (float32 stays float32).
        loss = loss * Tensor(np.asarray(weight, dtype=loss.data.dtype))
    return loss.mean()
