"""Optimizers: SGD with momentum and Adam.

Weight updates always happen on the master copy of the parameters, as in the
paper's training setup (the BFP/INT/FP quantization is applied on the way
into the matrix products, not to the stored master weights).  By default the
master copy *is* the parameter array, at whatever dtype the model carries --
float64 for the bit-exact default, float32 under the float32 compute mode
(exactly the paper's FAST setup: BFP compute with an FP32 master copy, as in
HBFP-style block-floating-point trainers).

``master_dtype`` optionally keeps the master copy and the optimizer state at
a *higher* precision than the parameters: updates accumulate in the master
dtype and the parameter array is refreshed with a single rounding per step.
This is the classic mixed-precision recipe for float32 (or lower) compute
with float64-quality weight accumulation.  An optional ``update_quantizer``
hook lets experiments additionally quantize the updated weights, which is
what the FAST hardware does when writing ``W'`` back to the weight SRAM
(Figure 16c, step 3).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds the parameter list and the shared step/zero_grad API."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 master_dtype=None):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self.master_dtype = None if master_dtype is None else np.dtype(master_dtype)
        if self.master_dtype is not None:
            self._master: Optional[List[np.ndarray]] = [
                param.data.astype(self.master_dtype, copy=True) for param in self.parameters
            ]
        else:
            self._master = None

    def _state_template(self, param: Parameter) -> np.ndarray:
        """Zeros shaped like ``param`` at the dtype optimizer state lives in."""
        if self.master_dtype is not None:
            return np.zeros(param.shape, dtype=self.master_dtype)
        return np.zeros_like(param.data)

    def _read_weight(self, index: int, param: Parameter) -> np.ndarray:
        """The array updates are computed on (master copy when configured)."""
        if self._master is not None:
            return self._master[index]
        return param.data

    def _grad(self, index: int, param: Parameter) -> np.ndarray:
        """The gradient at the update dtype (upcast once when a master is kept)."""
        grad = param.grad
        if self.master_dtype is not None and grad.dtype != self.master_dtype:
            grad = grad.astype(self.master_dtype)
        return grad

    def _write_weight(self, index: int, param: Parameter, updated: np.ndarray) -> None:
        """Store the updated weights (round master -> parameter dtype once)."""
        if self._master is not None:
            self._master[index] = updated
            param.data = updated.astype(param.data.dtype)
        else:
            param.data = updated
        self._mark_updated(param)

    def _state_arrays(self) -> List[List[np.ndarray]]:
        """Per-parameter state lists (momentum/moment buffers) of the subclass."""
        return []

    def refresh_dtype(self) -> None:
        """Re-align optimizer state with the parameters' current dtype.

        Called by the trainers after casting the model with ``Module.to``:
        state created from the pre-cast parameters (e.g. float64 momentum for
        a now-float32 model) would silently promote every update back to
        float64.  With a ``master_dtype`` the state intentionally lives at the
        master precision and is left untouched.
        """
        if self.master_dtype is not None:
            return
        for state in self._state_arrays():
            for index, param in enumerate(self.parameters):
                if state[index].dtype != param.data.dtype:
                    state[index] = state[index].astype(param.data.dtype)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    @staticmethod
    def _mark_updated(param: Parameter) -> None:
        """Bump the parameter's version so weight-quantization caches refresh."""
        bump = getattr(param, "bump_version", None)
        if bump is not None:
            bump()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        self.lr = lr


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        update_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        master_dtype=None,
    ):
        super().__init__(parameters, lr, master_dtype=master_dtype)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.update_quantizer = update_quantizer
        self._velocity = [self._state_template(param) for param in self.parameters]

    def _state_arrays(self) -> List[List[np.ndarray]]:
        return [self._velocity]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = self._grad(index, param)
            weight = self._read_weight(index, param)
            if self.weight_decay:
                grad = grad + self.weight_decay * weight
            if self.momentum:
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            updated = weight - self.lr * grad
            if self.update_quantizer is not None:
                updated = self.update_quantizer(updated)
            self._write_weight(index, param, updated)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), used by the paper for the Transformer."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        update_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        master_dtype=None,
    ):
        super().__init__(parameters, lr, master_dtype=master_dtype)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.update_quantizer = update_quantizer
        self._step = 0
        self._m = [self._state_template(param) for param in self.parameters]
        self._v = [self._state_template(param) for param in self.parameters]

    def _state_arrays(self) -> List[List[np.ndarray]]:
        return [self._m, self._v]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = self._grad(index, param)
            weight = self._read_weight(index, param)
            if self.weight_decay:
                grad = grad + self.weight_decay * weight
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            updated = weight - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            if self.update_quantizer is not None:
                updated = self.update_quantizer(updated)
            self._write_weight(index, param, updated)
