"""Optimizers: SGD with momentum and Adam.

Weight updates always happen on the FP32 master copy of the parameters, as
in the paper's training setup (the BFP/INT/FP quantization is applied on the
way into the matrix products, not to the stored master weights).  An optional
``update_format`` hook lets experiments additionally quantize the updated
weights, which is what the FAST hardware does when writing ``W'`` back to the
weight SRAM (Figure 16c, step 3).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds the parameter list and the shared step/zero_grad API."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    @staticmethod
    def _mark_updated(param: Parameter) -> None:
        """Bump the parameter's version so weight-quantization caches refresh."""
        bump = getattr(param, "bump_version", None)
        if bump is not None:
            bump()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        self.lr = lr


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        update_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.update_quantizer = update_quantizer
        self._velocity = [np.zeros_like(param.data) for param in self.parameters]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            updated = param.data - self.lr * grad
            if self.update_quantizer is not None:
                updated = self.update_quantizer(updated)
            param.data = updated
            self._mark_updated(param)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), used by the paper for the Transformer."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        update_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.update_quantizer = update_quantizer
        self._step = 0
        self._m = [np.zeros_like(param.data) for param in self.parameters]
        self._v = [np.zeros_like(param.data) for param in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            updated = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            if self.update_quantizer is not None:
                updated = self.update_quantizer(updated)
            param.data = updated
            self._mark_updated(param)
