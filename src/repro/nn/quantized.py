"""Quantization-aware layers and quantization schemes.

A *quantization scheme* decides how the three tensor kinds of a layer --
weights, input activations and output gradients -- are quantized.  Quantized
layers (:class:`QuantizedLinear`, :class:`QuantizedConv2d`) apply the scheme
around their matrix products exactly where the FAST hardware applies the BFP
converter (Figure 16):

* weights and activations are fake-quantized on the way into the product
  (straight-through estimator),
* the layer output carries a :func:`~repro.nn.functional.quantize_gradient`
  hook so the output gradient ``∇O`` is quantized before it is used for the
  two backward-pass products of Figure 3.

Schemes provided:

* :class:`IdentityScheme` -- no quantization (FP32 baseline).
* :class:`FormatScheme` -- a fixed :class:`~repro.formats.base.NumberFormat`
  for all tensors (used for Table II).
* :class:`BFPScheme` -- BFP with independently settable mantissa widths for
  W, A and G (used by the fixed and scheduled precision baselines).
* :class:`FASTScheme` -- consults a
  :class:`~repro.core.precision_policy.PrecisionPolicy` on every call, which
  is how Algorithm 1 selects 2- or 4-bit mantissas per tensor per iteration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.bfp import BFPConfig, bfp_quantize
from ..core.kernels import LayoutCache, layout_cache_enabled
from ..core.precision_policy import PrecisionPolicy
from ..formats.base import NumberFormat, TensorKind
from . import functional as F
from .modules import Conv2d, Linear, Module
from .tensor import Tensor, as_tensor

__all__ = [
    "QuantizationScheme",
    "IdentityScheme",
    "FormatScheme",
    "BFPScheme",
    "FASTScheme",
    "QuantizedLinear",
    "QuantizedConv2d",
    "quantized_modules",
    "assign_layer_indices",
]


class QuantizationScheme:
    """Base scheme: quantize weights, activations and gradients of one layer."""

    def quantize_weight(self, values: np.ndarray) -> np.ndarray:
        return values

    def quantize_activation(self, values: np.ndarray) -> np.ndarray:
        return values

    def quantize_gradient(self, values: np.ndarray) -> np.ndarray:
        return values

    def precision_setting(self) -> Dict[str, Optional[int]]:
        """Mantissa widths used for (W, A, G); ``None`` when not applicable."""
        return {"weight": None, "activation": None, "gradient": None}

    def weight_cache_token(self, values: Optional[np.ndarray] = None):
        """Hashable token identifying the weight-quantization function.

        When this returns a token, quantized layers may cache the quantized
        weight array and reuse it while the token and the parameter's
        ``version`` counter both stay unchanged.  ``values`` passes the weight
        array for schemes whose token depends on the data (the FAST-Adaptive
        policy evaluates ``r(W)`` to choose the mantissa width; the chosen
        bits join the token so a changed decision invalidates the cache).
        Schemes with stateful or non-deterministic weight quantization return
        ``None`` to opt out of caching.
        """
        return None

    @property
    def is_identity(self) -> bool:
        return False


class IdentityScheme(QuantizationScheme):
    """No quantization at all (the FP32 baseline)."""

    @property
    def is_identity(self) -> bool:
        return True


class FormatScheme(QuantizationScheme):
    """Quantize every tensor with a fixed :class:`NumberFormat`."""

    def __init__(self, number_format: NumberFormat, rng=None):
        self.number_format = number_format
        self.rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng

    def quantize_weight(self, values: np.ndarray) -> np.ndarray:
        return self.number_format.quantize(values, kind=TensorKind.WEIGHT, rng=self.rng)

    def quantize_activation(self, values: np.ndarray) -> np.ndarray:
        return self.number_format.quantize(values, kind=TensorKind.ACTIVATION, rng=self.rng)

    def quantize_gradient(self, values: np.ndarray) -> np.ndarray:
        return self.number_format.quantize(values, kind=TensorKind.GRADIENT, rng=self.rng)

    def precision_setting(self) -> Dict[str, Optional[int]]:
        bits = self.number_format.mantissa_bits
        return {"weight": bits, "activation": bits, "gradient": bits}


class BFPScheme(QuantizationScheme):
    """BFP quantization with independent mantissa widths per tensor kind."""

    def __init__(
        self,
        config: Optional[BFPConfig] = None,
        weight_bits: int = 4,
        activation_bits: int = 4,
        gradient_bits: int = 4,
        stochastic_gradients: bool = True,
        rng=None,
    ):
        self.config = config if config is not None else BFPConfig(exponent_bits=3)
        self.bits = {
            TensorKind.WEIGHT: weight_bits,
            TensorKind.ACTIVATION: activation_bits,
            TensorKind.GRADIENT: gradient_bits,
        }
        self.stochastic_gradients = stochastic_gradients
        self.rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
        # Per-scheme grouped-layout cache: a layer's W/A/G shapes repeat every
        # iteration, so their grouping descriptors and padded workspaces are
        # derived once and reused across the whole training run.
        self._layouts = LayoutCache(max_entries=16)

    def set_bits(self, kind: str, bits: int) -> None:
        if kind not in self.bits:
            raise KeyError(f"unknown tensor kind {kind!r}")
        self.bits[kind] = bits

    def _quantize(self, values: np.ndarray, kind: str) -> np.ndarray:
        rounding = "nearest"
        if kind == TensorKind.GRADIENT and self.stochastic_gradients:
            rounding = "stochastic"
        values = np.asarray(values)
        # The global switch governs scheme-level layouts too, so disabling
        # the cache (benchmarks timing the uncached path) really does force
        # per-call layout derivation everywhere.
        layout = (self._layouts.layout_for(values, self.config.group_size)
                  if layout_cache_enabled() else None)
        return bfp_quantize(
            values,
            mantissa_bits=self.bits[kind],
            group_size=self.config.group_size,
            exponent_bits=self.config.exponent_bits,
            rounding=rounding,
            rng=self.rng,
            layout=layout,
        )

    def quantize_weight(self, values: np.ndarray) -> np.ndarray:
        return self._quantize(values, TensorKind.WEIGHT)

    def quantize_activation(self, values: np.ndarray) -> np.ndarray:
        return self._quantize(values, TensorKind.ACTIVATION)

    def quantize_gradient(self, values: np.ndarray) -> np.ndarray:
        return self._quantize(values, TensorKind.GRADIENT)

    def weight_cache_token(self, values: Optional[np.ndarray] = None):
        # Weights always use deterministic nearest rounding, so the quantized
        # weight is a pure function of (weight data, these parameters).
        return (
            "bfp",
            self.bits[TensorKind.WEIGHT],
            self.config.group_size,
            self.config.exponent_bits,
        )

    def precision_setting(self) -> Dict[str, Optional[int]]:
        return {
            "weight": self.bits[TensorKind.WEIGHT],
            "activation": self.bits[TensorKind.ACTIVATION],
            "gradient": self.bits[TensorKind.GRADIENT],
        }


class FASTScheme(QuantizationScheme):
    """Per-call adaptive BFP scheme driven by a precision policy (Algorithm 1).

    The scheme stores the layer index it is attached to and the current
    training iteration (updated by the trainer each step).  Every quantize
    call asks the policy for the mantissa width of that tensor kind, then
    quantizes with it -- mirroring how the hardware BFP converter evaluates
    ``r(X)`` as a by-product of conversion and picks the chunk count for the
    very tensor being converted.

    Decision selection is split from quantization: the policy's
    :meth:`~repro.core.precision_policy.PrecisionPolicy.decide` is pure, so
    the chosen weight bits can join the weight-cache key
    (:meth:`weight_cache_token`).  Adaptive training therefore caches
    quantized weights exactly like the fixed schemes -- repeated forwards and
    eval loops re-select (cheaply, via the policy's evaluation-interval memo)
    but only re-quantize when the version or the bits decision changes.
    """

    def __init__(
        self,
        policy: PrecisionPolicy,
        layer_index: int = 0,
        config: Optional[BFPConfig] = None,
        stochastic_gradients: bool = True,
        rng=None,
    ):
        self.policy = policy
        self.layer_index = layer_index
        self.iteration = 0
        self.config = config if config is not None else BFPConfig(exponent_bits=3)
        self.stochastic_gradients = stochastic_gradients
        self.rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
        self._last_bits: Dict[str, int] = {}
        self._layouts = LayoutCache(max_entries=16)
        # Bits chosen by the most recent weight_cache_token() call, tagged
        # with its iteration so quantize_weight can reuse the decision
        # instead of asking (and recording with) the policy a second time.
        self._pending_weight_bits = None

    def _quantize_with_bits(self, values: np.ndarray, kind: str, bits: int) -> np.ndarray:
        self._last_bits[kind] = bits
        rounding = "nearest"
        if kind == TensorKind.GRADIENT and self.stochastic_gradients:
            rounding = "stochastic"
        values = np.asarray(values)
        layout = (self._layouts.layout_for(values, self.config.group_size)
                  if layout_cache_enabled() else None)
        return bfp_quantize(
            values,
            mantissa_bits=bits,
            group_size=self.config.group_size,
            exponent_bits=self.config.exponent_bits,
            rounding=rounding,
            rng=self.rng,
            layout=layout,
        )

    def _quantize(self, values: np.ndarray, kind: str) -> np.ndarray:
        bits = self.policy.select(kind, self.layer_index, self.iteration, tensor=values)
        return self._quantize_with_bits(values, kind, bits)

    def weight_cache_token(self, values: Optional[np.ndarray] = None):
        if values is None:
            # Without the weight data the policy cannot evaluate r(W).
            return None
        bits = self.policy.select(
            TensorKind.WEIGHT, self.layer_index, self.iteration, tensor=values
        )
        self._last_bits[TensorKind.WEIGHT] = bits
        self._pending_weight_bits = (self.iteration, bits, values)
        return ("fast", bits, self.config.group_size, self.config.exponent_bits)

    def quantize_weight(self, values: np.ndarray) -> np.ndarray:
        # Reuse the pending decision only for the exact array it was made for
        # at the current iteration; a stale entry (e.g. left behind by a
        # cache-hit forward) must not leak its bits onto another tensor, and
        # standalone calls must still select (and record) freshly.
        pending = self._pending_weight_bits
        self._pending_weight_bits = None
        if pending is not None and pending[0] == self.iteration and pending[2] is values:
            return self._quantize_with_bits(values, TensorKind.WEIGHT, pending[1])
        return self._quantize(values, TensorKind.WEIGHT)

    def quantize_activation(self, values: np.ndarray) -> np.ndarray:
        return self._quantize(values, TensorKind.ACTIVATION)

    def quantize_gradient(self, values: np.ndarray) -> np.ndarray:
        return self._quantize(values, TensorKind.GRADIENT)

    def precision_setting(self) -> Dict[str, Optional[int]]:
        return {
            "weight": self._last_bits.get(TensorKind.WEIGHT),
            "activation": self._last_bits.get(TensorKind.ACTIVATION),
            "gradient": self._last_bits.get(TensorKind.GRADIENT),
        }


class WeightCacheMixin:
    """Caches the quantized weight array keyed on the parameter version.

    The cache key combines the weight parameter's ``version`` counter (bumped
    by the optimizer on every update) with the scheme's
    :meth:`QuantizationScheme.weight_cache_token`.  While both are unchanged
    -- eval loops, test-time adaptation inference, repeated forwards between
    optimizer steps -- the weight is quantized once and reused; gradients
    still flow to the full-precision master copy through the usual
    straight-through estimator.

    The token call receives the weight array so data-dependent schemes
    (FAST-Adaptive) can fold their bits decision into the key: a policy that
    flips a layer from 2 to 4 bits invalidates that layer's cached weight
    even when the parameter version is unchanged.
    """

    def _init_weight_cache(self) -> None:
        self._weight_cache_key = None
        self._weight_cache_value = None

    def clear_weight_cache(self) -> None:
        """Drop the cached quantized weight (e.g. after mutating ``weight.data``)."""
        self._weight_cache_key = None
        self._weight_cache_value = None

    def _quantized_weight(self) -> Tensor:
        token = self.scheme.weight_cache_token(self.weight.data)
        version = getattr(self.weight, "version", None)
        if token is None or version is None:
            return F.fake_quantize(self.weight, self.scheme.quantize_weight)
        key = (version, token)
        if key != self._weight_cache_key:
            self._weight_cache_value = self.scheme.quantize_weight(self.weight.data)
            self._weight_cache_key = key
        cached = self._weight_cache_value
        return F.fake_quantize(self.weight, lambda _values: cached)


class QuantizedLinear(WeightCacheMixin, Linear):
    """A :class:`Linear` layer with W/A/G quantization hooks."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 scheme: Optional[QuantizationScheme] = None, rng=None, dtype=None):
        super().__init__(in_features, out_features, bias=bias, rng=rng, dtype=dtype)
        self.scheme = scheme if scheme is not None else IdentityScheme()
        self.layer_index = 0
        self._init_weight_cache()

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if self.scheme.is_identity:
            return F.linear(x, self.weight, self.bias)
        quantized_weight = self._quantized_weight()
        quantized_input = F.fake_quantize(x, self.scheme.quantize_activation)
        output = F.linear(quantized_input, quantized_weight, self.bias)
        return F.quantize_gradient(output, self.scheme.quantize_gradient)


class QuantizedConv2d(WeightCacheMixin, Conv2d):
    """A :class:`Conv2d` layer with W/A/G quantization hooks."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True, groups: int = 1,
                 scheme: Optional[QuantizationScheme] = None, rng=None, dtype=None):
        super().__init__(in_channels, out_channels, kernel_size, stride=stride,
                         padding=padding, bias=bias, groups=groups, rng=rng, dtype=dtype)
        self.scheme = scheme if scheme is not None else IdentityScheme()
        self.layer_index = 0
        self._init_weight_cache()

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if self.scheme.is_identity:
            return Conv2d.forward(self, x)
        quantized_input = F.fake_quantize(x, self.scheme.quantize_activation)
        # Temporarily swap in the quantized weight tensor so the parent class
        # handles both the grouped and ungrouped convolution paths.
        quantized_weight = self._quantized_weight()
        original_weight = self.weight
        object.__setattr__(self, "weight", quantized_weight)
        try:
            output = Conv2d.forward(self, quantized_input)
        finally:
            object.__setattr__(self, "weight", original_weight)
        return F.quantize_gradient(output, self.scheme.quantize_gradient)


def quantized_modules(model: Module) -> List[Module]:
    """All quantized layers of ``model`` in definition order."""
    return [
        module
        for _, module in model.named_modules()
        if isinstance(module, (QuantizedLinear, QuantizedConv2d))
    ]


def assign_layer_indices(model: Module) -> int:
    """Assign consecutive ``layer_index`` values to quantized layers.

    Returns the number of quantized layers.  The FAST threshold of Equation 1
    depends on the layer depth, so trainers call this once after building the
    model.
    """
    layers = quantized_modules(model)
    for index, layer in enumerate(layers):
        layer.layer_index = index
        if hasattr(layer.scheme, "layer_index"):
            layer.scheme.layer_index = index
    return len(layers)
