"""Weight initializers for the NN substrate.

Every initializer accepts a ``dtype`` (default ``np.float64``, the repo's
bit-exact reference precision).  Passing ``np.float32`` yields float32
arrays so parameters built for the float32 compute mode never materialize a
float64 copy first: values are drawn in float64 (keeping the random stream
identical across dtypes for a given seed) and rounded once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "zeros", "ones", "normal"]


def _fan_in_out(shape):
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        out_channels, in_channels, kernel_h, kernel_w = shape
        receptive = kernel_h * kernel_w
        fan_in = in_channels * receptive
        fan_out = out_channels * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in = fan_out = int(np.prod(shape[1:])) or 1
    return fan_in, fan_out


def _cast(values: np.ndarray, dtype) -> np.ndarray:
    return values if dtype is None else values.astype(dtype, copy=False)


def kaiming_uniform(shape, rng=None, gain: float = np.sqrt(2.0), dtype=None) -> np.ndarray:
    """He/Kaiming uniform initialization (default for ReLU networks)."""
    rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def kaiming_normal(shape, rng=None, gain: float = np.sqrt(2.0), dtype=None) -> np.ndarray:
    """He/Kaiming normal initialization."""
    rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(max(fan_in, 1))
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def xavier_uniform(shape, rng=None, gain: float = 1.0, dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform initialization (default for tanh/linear layers)."""
    rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def normal(shape, std: float = 0.02, rng=None, dtype=None) -> np.ndarray:
    """Gaussian initialization with a fixed standard deviation."""
    rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def zeros(shape, dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64 if dtype is None else dtype)


def ones(shape, dtype=None) -> np.ndarray:
    return np.ones(shape, dtype=np.float64 if dtype is None else dtype)
