"""A small reverse-mode automatic differentiation engine on NumPy arrays.

The paper trains DNNs with PyTorch; this module is the from-scratch
substitute.  A :class:`Tensor` wraps a NumPy array and records the operations
applied to it so that :meth:`Tensor.backward` can propagate gradients through
the graph with reverse-mode accumulation.

Only the operations needed by the models in :mod:`repro.models` are
implemented, but each supports full NumPy broadcasting and batched shapes.
Gradient correctness is checked against numerical differentiation in
``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor", "set_sanitizer"]


_GRAD_ENABLED = True

#: Non-finite-provenance hook (same gate idiom as the kernel profiler).
#: ``None`` keeps op construction on the pre-existing code path: one global
#: load and one branch per op.  Installed/removed by
#: :mod:`repro.devtools.sanitize` -- this module never imports devtools.
_SANITIZER = None


def set_sanitizer(sanitizer) -> object:
    """Install (or with ``None`` remove) the op-result sanitizer; returns
    the previous one.  ``sanitizer`` needs one method:
    ``check_tensor_op(out, parents)``."""
    global _SANITIZER
    previous = _SANITIZER
    _SANITIZER = sanitizer
    return previous


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Convert ``value`` (array-like or Tensor) to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A NumPy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op", "name")

    def __init__(self, data, requires_grad: bool = False, parents: Sequence["Tensor"] = (), op: str = "",
                 dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        # float32 is preserved so low-precision activation pipelines are not
        # silently upcast; every other dtype is promoted to float64 as before.
        # An explicit ``dtype`` overrides both rules (the compute-dtype entry
        # point used by initializers and ``Module.to``).
        array = np.asarray(data)
        if dtype is not None:
            self.data = np.asarray(array, dtype=dtype)
        else:
            self.data = array if array.dtype == np.float32 else np.asarray(array, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = tuple(parents) if self.requires_grad else ()
        self.op = op
        self.name: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.ndim else float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data, parents: Sequence["Tensor"], backward: Callable[[np.ndarray], None], op: str) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, parents=[p for p in parents if p.requires_grad], op=op)
        if requires:
            out._backward = backward
        if _SANITIZER is not None:
            _SANITIZER.check_tensor_op(out, parents)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        # Gradients live in the tensor's own dtype: a float32 parameter gets
        # float32 gradients (and float32 accumulation), the float64 default
        # keeps its bit-exact float64 stream.
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the graph reachable from this tensor.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _coerce(self, other) -> "Tensor":
        """Tensor-ify an operand, keeping scalars at this tensor's dtype.

        Python/NumPy scalars (learning rates, ``1/count`` factors,
        ``np.sqrt(dim)`` results) would otherwise become float64 0-d arrays
        and silently promote a float32 pipeline to float64.  Arrays and
        tensors keep their own dtype, so genuine mixed-dtype operands still
        follow NumPy promotion.
        """
        if isinstance(other, Tensor):
            return other
        if np.isscalar(other) and np.issubdtype(self.data.dtype, np.floating):
            return Tensor(np.asarray(other, dtype=self.data.dtype))
        return Tensor(other)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, "pow")

    # ------------------------------------------------------------------ #
    # Matrix multiplication
    # ------------------------------------------------------------------ #
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = np.matmul(self.data, other.data)

        def backward(grad):
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    grad_a = np.multiply.outer(grad, b) if a.ndim > 1 else grad * b
                else:
                    grad_a = np.matmul(grad, np.swapaxes(b, -1, -2))
                if a.ndim == 1 and grad_a.ndim > 1:
                    grad_a = grad_a.sum(axis=tuple(range(grad_a.ndim - 1)))
                self._accumulate(_unbroadcast(grad_a, a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    grad_b = np.multiply.outer(a, grad) if b.ndim > 1 else a * grad
                else:
                    grad_b = np.matmul(np.swapaxes(a, -1, -2), grad)
                if b.ndim == 1 and grad_b.ndim > 1:
                    grad_b = grad_b.sum(axis=tuple(range(grad_b.ndim - 1)))
                other._accumulate(_unbroadcast(grad_b, b.shape))

        return Tensor._make(out_data, (self, other), backward, "matmul")

    def matmul(self, other) -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------ #
    # Elementwise nonlinear functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.1) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype, copy=False)
        out_data = self.data * scale

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward, "leaky_relu")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, "clip")

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            grad = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad, self.shape)
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                if not keepdims:
                    for a in sorted(axes):
                        grad = np.expand_dims(grad, a)
                expanded = np.broadcast_to(grad, self.shape)
            self._accumulate(expanded.copy())

        return Tensor._make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            grad = np.asarray(grad)
            if axis is None:
                expanded_max = np.full(self.shape, out_data, dtype=self.data.dtype)
                expanded_grad = np.broadcast_to(grad, self.shape)
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                grad_k = grad
                max_k = out_data
                if not keepdims:
                    for a in sorted(axes):
                        grad_k = np.expand_dims(grad_k, a)
                        max_k = np.expand_dims(max_k, a)
                expanded_max = np.broadcast_to(max_k, self.shape)
                expanded_grad = np.broadcast_to(grad_k, self.shape)
            mask = (self.data == expanded_max).astype(self.data.dtype)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            mask = mask / np.broadcast_to(counts, self.shape)
            self._accumulate(expanded_grad * mask)

        return Tensor._make(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward, "reshape")

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward, "transpose")

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        original_shape = self.shape

        def backward(grad):
            if self.requires_grad:
                full = np.zeros(original_shape, dtype=self.data.dtype)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward, "getitem")

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows :func:`numpy.pad` conventions."""
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(before, before + size)
            for (before, _), size in zip(pad_width, self.shape)
        )

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad[slices])

        return Tensor._make(out_data, (self,), backward, "pad")

    # ------------------------------------------------------------------ #
    # Composite helpers
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        exps = shifted.exp()
        return exps / exps.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward, "concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward, "stack")


# Re-export module-level helpers on the class for convenience.
Tensor.concat = staticmethod(concat)
Tensor.stack = staticmethod(stack)
