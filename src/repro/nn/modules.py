"""Module system: layers with learnable parameters and composition helpers.

Mirrors the subset of ``torch.nn`` needed by the paper's evaluation models:
``Linear``, ``Conv2d``, ``BatchNorm2d``, ``LayerNorm``, ``Embedding``,
activations, pooling, ``Dropout``, ``Sequential``.  Modules register their
parameters and submodules automatically via attribute assignment so that
``parameters()`` and ``named_modules()`` walk the whole tree, which the
quantized trainers rely on to enumerate layers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor, as_tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Embedding",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Sequential",
    "ModuleList",
]


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module.

    Carries a monotonically increasing ``version`` counter that optimizers
    bump on every in-place update.  Quantized layers key their cached
    quantized weights on it, so unchanged weights (eval, TTA, repeated
    forward passes) are never re-quantized.  Code that mutates ``data``
    directly should call :meth:`bump_version` to invalidate those caches.
    """

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)
        self.version = 0

    def bump_version(self) -> None:
        """Mark the parameter as modified (invalidates quantization caches)."""
        self.version += 1


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", [])
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
            # A submodule attached after ``eval()``/``train()`` inherits the
            # parent's current mode, so one toggle on the root governs every
            # training-only branch (dropout, batch-norm statistics).
            if value.training != self.training:
                value.train(self.training)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, value: Optional[Parameter]) -> None:
        if value is not None:
            self._parameters[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable state array (e.g. batch-norm statistics).

        Buffers join :meth:`state_dict`/:meth:`load_state_dict` so running
        statistics survive checkpointing, but they are not returned by
        :meth:`parameters` and receive no gradients.  Reassigning the
        attribute updates the buffer (the name stays registered).
        """
        if name not in self._buffers:
            self._buffers.append(name)
        object.__setattr__(self, name, np.asarray(value))

    def named_buffers(self, prefix: str = "") -> List[Tuple[str, np.ndarray]]:
        result = [(prefix + name, getattr(self, name)) for name in self._buffers]
        for name, module in self._modules.items():
            result.extend(module.named_buffers(prefix=prefix + name + "."))
        return result

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        if module.training != self.training:
            module.train(self.training)
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All learnable parameters of this module and its submodules."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> List[Tuple[str, Parameter]]:
        result = []
        for name, param in self._parameters.items():
            result.append((prefix + name, param))
        for name, module in self._modules.items():
            result.extend(module.named_parameters(prefix=prefix + name + "."))
        return result

    def named_modules(self, prefix: str = "") -> List[Tuple[str, "Module"]]:
        result = [(prefix.rstrip("."), self)] if prefix else [("", self)]
        for name, module in self._modules.items():
            result.extend(module.named_modules(prefix=prefix + name + "."))
        return result

    def modules(self) -> List["Module"]:
        return [module for _, module in self.named_modules()]

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def to(self, dtype) -> "Module":
        """Cast every floating parameter and buffer to ``dtype`` in place.

        The cast bumps parameter versions and clears per-layer quantized
        weight caches so stale arrays at the old dtype are never reused.
        Integer buffers (e.g. token indices) are left untouched.  Optimizers
        built *before* the cast hold state at the old dtype -- construct them
        after ``to()`` (matching the usual build/cast/optimize order).
        """
        dtype = np.dtype(dtype)
        for param in self.parameters():
            if np.issubdtype(param.data.dtype, np.floating) and param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
                param.grad = None
                if isinstance(param, Parameter):
                    param.bump_version()
        for _, module in self.named_modules():
            for name in module._buffers:
                value = getattr(module, name)
                if (isinstance(value, np.ndarray)
                        and np.issubdtype(value.dtype, np.floating)
                        and value.dtype != dtype):
                    object.__setattr__(module, name, value.astype(dtype))
            clear_cache = getattr(module, "clear_weight_cache", None)
            if clear_cache is not None:
                clear_cache()
        return self

    def float(self) -> "Module":
        """Cast to float32 (the compute-dtype training/serving mode)."""
        return self.to(np.float32)

    def double(self) -> "Module":
        """Cast to float64 (the bit-exact default precision)."""
        return self.to(np.float64)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """A flat name -> array snapshot of all parameters and buffers."""
        state = {name: param.data.copy() for name, param in self.named_parameters(prefix)}
        for name, value in self.named_buffers(prefix):
            state[name] = np.array(value)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, param in self.named_parameters():
            if name in state:
                # Load at the parameter's own dtype so a float32-cast model
                # stays float32 when restoring a checkpoint (float64 models
                # load bit-identically as before).
                param.data = np.array(state[name], dtype=param.data.dtype).reshape(param.shape)
                if isinstance(param, Parameter):
                    param.bump_version()
        for path, module in self.named_modules():
            prefix = path + "." if path else ""
            for name in module._buffers:
                key = prefix + name
                if key in state:
                    object.__setattr__(module, name, np.array(state[key]))

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------ #
    # Invocation
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}()"


class Linear(Module):
    """Fully connected layer ``y = x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None,
                 dtype=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng,
                                                     dtype=dtype))
        self.bias = Parameter(init.zeros(out_features, dtype=dtype)) if bias else None

    def forward(self, x) -> Tensor:
        return F.linear(as_tensor(x), self.weight, self.bias)


class Conv2d(Module):
    """2D convolution layer (NCHW layout, square kernels)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        groups: int = 1,
        rng=None,
        dtype=None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("in_channels and out_channels must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        weight_shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(weight_shape, rng=rng, dtype=dtype))
        self.bias = Parameter(init.zeros(out_channels, dtype=dtype)) if bias else None

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if self.groups == 1 or F.conv_fast_path_enabled():
            # Grouped convolutions run as one batched product over the group
            # axis inside F.conv2d (bit-identical to the per-group loop).
            return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                            padding=self.padding, groups=self.groups)
        # Reference grouped path (fast path disabled for benchmarking): run
        # each group independently and concatenate along the channel axis.
        in_per_group = self.in_channels // self.groups
        out_per_group = self.out_channels // self.groups
        outputs = []
        for g in range(self.groups):
            x_slice = x[:, g * in_per_group:(g + 1) * in_per_group]
            w_slice = self.weight[g * out_per_group:(g + 1) * out_per_group]
            b_slice = self.bias[g * out_per_group:(g + 1) * out_per_group] if self.bias is not None else None
            outputs.append(F.conv2d(x_slice, w_slice, b_slice, stride=self.stride, padding=self.padding))
        return Tensor.concat(outputs, axis=1)


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 dtype=None):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features, dtype=dtype))
        self.bias = Parameter(init.zeros(num_features, dtype=dtype))
        buffer_dtype = np.float64 if dtype is None else dtype
        self.register_buffer("running_mean", np.zeros(num_features, dtype=buffer_dtype))
        self.register_buffer("running_var", np.ones(num_features, dtype=buffer_dtype))

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normalized = (x - mean) / ((var + self.eps) ** 0.5)
        weight = self.weight.reshape(1, -1, 1, 1)
        bias = self.bias.reshape(1, -1, 1, 1)
        return normalized * weight + bias


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5, dtype=None):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones(normalized_shape, dtype=dtype))
        self.bias = Parameter(init.zeros(normalized_shape, dtype=dtype))

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / ((var + self.eps) ** 0.5)
        return normalized * self.weight + self.bias


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng=None, dtype=None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=0.02, rng=rng,
                                            dtype=dtype))

    def forward(self, indices) -> Tensor:
        return F.embedding(self.weight, np.asarray(indices))


class ReLU(Module):
    def forward(self, x) -> Tensor:
        return as_tensor(x).relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.1):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x) -> Tensor:
        return as_tensor(x).leaky_relu(self.negative_slope)


class Sigmoid(Module):
    def forward(self, x) -> Tensor:
        return as_tensor(x).sigmoid()


class Tanh(Module):
    def forward(self, x) -> Tensor:
        return as_tensor(x).tanh()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        inner = (x + x * x * x * 0.044715) * np.sqrt(2.0 / np.pi)
        return x * 0.5 * (inner.tanh() + 1.0)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x) -> Tensor:
        return F.max_pool2d(as_tensor(x), self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x) -> Tensor:
        return F.avg_pool2d(as_tensor(x), self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions, producing (N, C)."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).mean(axis=(2, 3))


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x) -> Tensor:
        return as_tensor(x).flatten(self.start_dim)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng

    def forward(self, x) -> Tensor:
        return F.dropout(as_tensor(x), self.p, training=self.training, rng=self.rng)


class Identity(Module):
    def forward(self, x) -> Tensor:
        return as_tensor(x)


class Sequential(Module):
    """Compose modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __len__(self) -> int:
        return len(self._order)

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x


class ModuleList(Module):
    """A list of modules whose parameters are registered with the parent."""

    def __init__(self, modules=()):
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __len__(self) -> int:
        return len(self._order)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called")
