"""Functional neural-network operations built on :class:`~repro.nn.tensor.Tensor`.

Contains the structured operations that need dedicated backward rules
(convolution, pooling, embedding lookup, dropout) plus the two quantization
hooks used by the fake-quantized training substrate:

* :func:`fake_quantize` -- replaces the forward values with their quantized
  counterparts and passes gradients straight through (the straight-through
  estimator used for weights and activations).
* :func:`quantize_gradient` -- identity on the forward pass but quantizes the
  *incoming gradient* on the backward pass, which models the BFP conversion
  of the output gradient ``∇O`` before it is used to compute ``∇A`` and
  ``∇W`` (Figure 3 / Figure 16).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "im2col_indices",
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "embedding",
    "dropout",
    "fake_quantize",
    "quantize_gradient",
    "one_hot",
    "linear",
]


# --------------------------------------------------------------------------- #
# im2col-based convolution
# --------------------------------------------------------------------------- #
def im2col_indices(
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
):
    """Index arrays that gather convolution patches from a padded input."""
    _, channels, height, width = input_shape
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty for input {input_shape}, "
            f"kernel ({kernel_h}, {kernel_w}), stride {stride}, padding {padding}"
        )

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    return k, i, j, out_h, out_w


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns: output (N, C*kh*kw, out_h*out_w)."""
    k, i, j, _, _ = im2col_indices(x.shape, kernel_h, kernel_w, stride, padding)
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    return padded[:, k, i, j]


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter columns back into image space (adjoint of :func:`im2col`)."""
    batch, channels, height, width = input_shape
    cols = np.asarray(cols)
    scatter_dtype = cols.dtype if np.issubdtype(cols.dtype, np.floating) else np.float64
    k, i, j, _, _ = im2col_indices(input_shape, kernel_h, kernel_w, stride, padding)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=scatter_dtype
    )
    np.add.at(padded, (slice(None), k, i, j), cols)
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution (NCHW layout) implemented with im2col + matmul.

    The im2col/matmul decomposition is exactly the matrix view of Figure 3,
    which is also how the systolic array executes the layer, so the quantized
    training path sees the same matrix products as the hardware.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    batch, _, _, _ = x.shape
    out_channels, _, kernel_h, kernel_w = weight.shape
    cols = im2col(x.data, kernel_h, kernel_w, stride, padding)
    _, _, _, out_h, out_w = im2col_indices(x.shape, kernel_h, kernel_w, stride, padding)
    weight_matrix = weight.data.reshape(out_channels, -1)
    out_data = np.einsum("of,nfl->nol", weight_matrix, cols)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1)
    out_data = out_data.reshape(batch, out_channels, out_h, out_w)

    input_shape = x.shape

    def backward(grad):
        grad_matrix = grad.reshape(batch, out_channels, -1)
        if weight.requires_grad:
            grad_weight = np.einsum("nol,nfl->of", grad_matrix, cols)
            weight._accumulate(grad_weight.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_matrix.sum(axis=(0, 2)))
        if x.requires_grad:
            grad_cols = np.einsum("of,nol->nfl", weight_matrix, grad_matrix)
            grad_x = col2im(grad_cols, input_shape, kernel_h, kernel_w, stride, padding)
            x._accumulate(grad_x)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward, "conv2d")


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over square windows (NCHW layout)."""
    x = as_tensor(x)
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = x.shape
    folded = x.data.reshape(batch * channels, 1, height, width)
    cols = im2col(folded, kernel_size, kernel_size, stride, 0)
    _, _, _, out_h, out_w = im2col_indices(folded.shape, kernel_size, kernel_size, stride, 0)
    max_idx = cols.argmax(axis=1)
    out_data = np.take_along_axis(cols, max_idx[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    def backward(grad):
        if not x.requires_grad:
            return
        grad_flat = grad.reshape(batch * channels, 1, -1)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, max_idx[:, None, :], grad_flat, axis=1)
        grad_x = col2im(grad_cols, folded.shape, kernel_size, kernel_size, stride, 0)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over square windows (NCHW layout)."""
    x = as_tensor(x)
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = x.shape
    folded_shape = (batch * channels, 1, height, width)
    cols = im2col(x.data.reshape(folded_shape), kernel_size, kernel_size, stride, 0)
    _, _, _, out_h, out_w = im2col_indices(folded_shape, kernel_size, kernel_size, stride, 0)
    out_data = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)
    window = kernel_size * kernel_size

    def backward(grad):
        if not x.requires_grad:
            return
        grad_flat = grad.reshape(batch * channels, 1, -1)
        grad_cols = np.broadcast_to(grad_flat / window, cols.shape).copy()
        grad_x = col2im(grad_cols, folded_shape, kernel_size, kernel_size, stride, 0)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward, "avg_pool2d")


# --------------------------------------------------------------------------- #
# Embedding, dropout, one-hot, linear
# --------------------------------------------------------------------------- #
def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` by integer ``indices`` (any shape)."""
    weight = as_tensor(weight)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(grad):
        if weight.requires_grad:
            grad_weight = np.zeros_like(weight.data)
            np.add.at(grad_weight, indices.reshape(-1), grad.reshape(-1, weight.shape[-1]))
            weight._accumulate(grad_weight)

    return Tensor._make(out_data, (weight,), backward, "embedding")


def dropout(x: Tensor, p: float, training: bool = True, rng=None) -> Tensor:
    """Inverted dropout: zero a fraction ``p`` of values and rescale the rest."""
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    out_data = x.data * mask

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward, "dropout")


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer class indices."""
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    encoded = np.zeros((indices.size, num_classes), dtype=np.float64)
    encoded[np.arange(indices.size), indices] = 1.0
    return encoded


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = as_tensor(x) @ as_tensor(weight).swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out


# --------------------------------------------------------------------------- #
# Quantization hooks
# --------------------------------------------------------------------------- #
def fake_quantize(x: Tensor, quantize_fn: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Quantize the forward values, pass gradients straight through.

    This is the standard straight-through estimator used for quantized
    weights and activations: the matrix products see quantized values while
    the full-precision master copy keeps receiving exact gradients.
    """
    x = as_tensor(x)
    out_data = quantize_fn(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward, "fake_quantize")


def quantize_gradient(x: Tensor, quantize_fn: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Identity forward; quantize the incoming gradient during backward.

    Inserted at a layer's output so that the output gradient ``∇O`` is
    BFP-quantized before it drives the two backward-pass matrix products of
    Figure 3, which is where the FAST hardware applies the BFP converter.
    """
    x = as_tensor(x)
    out_data = x.data

    def backward(grad):
        if x.requires_grad:
            x._accumulate(quantize_fn(grad))

    return Tensor._make(out_data, (x,), backward, "quantize_gradient")
