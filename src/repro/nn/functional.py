"""Functional neural-network operations built on :class:`~repro.nn.tensor.Tensor`.

Contains the structured operations that need dedicated backward rules
(convolution, pooling, embedding lookup, dropout) plus the two quantization
hooks used by the fake-quantized training substrate:

* :func:`fake_quantize` -- replaces the forward values with their quantized
  counterparts and passes gradients straight through (the straight-through
  estimator used for weights and activations).
* :func:`quantize_gradient` -- identity on the forward pass but quantizes the
  *incoming gradient* on the backward pass, which models the BFP conversion
  of the output gradient ``∇O`` before it is used to compute ``∇A`` and
  ``∇W`` (Figure 3 / Figure 16).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Tuple

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "im2col_indices",
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "embedding",
    "dropout",
    "fake_quantize",
    "quantize_gradient",
    "one_hot",
    "linear",
    "im2col_cache_enabled",
    "set_im2col_cache_enabled",
    "clear_im2col_cache",
    "conv_fast_path_enabled",
    "set_conv_fast_path_enabled",
]

#: When enabled (default), convolution forward/backward products run through
#: BLAS ``matmul`` instead of ``np.einsum`` and ``col2im`` scatters through a
#: single ``np.bincount`` instead of the unbuffered ``np.add.at``.  The
#: bincount scatter walks the same (index, value) sequence as ``add.at`` and
#: is bit-identical; the BLAS products use a different (blocked) accumulation
#: order and agree to rounding error.  Benchmarks disable this to time the
#: pre-fast-path step.
_CONV_FAST_ENABLED = True


def conv_fast_path_enabled() -> bool:
    return _CONV_FAST_ENABLED


def set_conv_fast_path_enabled(enabled: bool) -> bool:
    """Enable/disable the BLAS/bincount convolution path; returns the previous setting."""
    global _CONV_FAST_ENABLED
    previous = _CONV_FAST_ENABLED
    _CONV_FAST_ENABLED = bool(enabled)
    return previous


# --------------------------------------------------------------------------- #
# im2col-based convolution
# --------------------------------------------------------------------------- #
#: Memoized gather-index arrays keyed on the convolution geometry.  Layer
#: geometry is fixed across a training run, so each conv/pool layer derives
#: its (k, i, j) arrays exactly once instead of several times per step (the
#: forward previously built them twice -- inside ``im2col`` and again for the
#: output size -- and the backward a third time for ``col2im``).
_IM2COL_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_IM2COL_CACHE_MAX = 256
_IM2COL_CACHE_ENABLED = True


def im2col_cache_enabled() -> bool:
    return _IM2COL_CACHE_ENABLED


def set_im2col_cache_enabled(enabled: bool) -> bool:
    """Enable/disable im2col index memoization; returns the previous setting."""
    global _IM2COL_CACHE_ENABLED
    previous = _IM2COL_CACHE_ENABLED
    _IM2COL_CACHE_ENABLED = bool(enabled)
    return previous


def clear_im2col_cache() -> None:
    """Drop all memoized gather *and* scatter index arrays."""
    _IM2COL_CACHE.clear()
    _SCATTER_CACHE.clear()


def _build_im2col_indices(channels, height, width, kernel_h, kernel_w, stride, padding):
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty for input "
            f"(N, {channels}, {height}, {width}), "
            f"kernel ({kernel_h}, {kernel_w}), stride {stride}, padding {padding}"
        )

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    for array in (k, i, j):
        array.flags.writeable = False
    return k, i, j, out_h, out_w


def im2col_indices(
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
):
    """Index arrays that gather convolution patches from a padded input.

    The arrays depend only on ``(C, H, W, kernel, stride, padding)`` -- not
    the batch size -- and are memoized on that key (returned read-only; do
    not mutate them).  Disable with :func:`set_im2col_cache_enabled` to
    measure the uncached path.
    """
    _, channels, height, width = input_shape
    key = (channels, height, width, kernel_h, kernel_w, stride, padding)
    if _IM2COL_CACHE_ENABLED:
        cached = _IM2COL_CACHE.get(key)
        if cached is not None:
            _IM2COL_CACHE.move_to_end(key)
            return cached
    entry = _build_im2col_indices(channels, height, width, kernel_h, kernel_w,
                                  stride, padding)
    if _IM2COL_CACHE_ENABLED:
        _IM2COL_CACHE[key] = entry
        while len(_IM2COL_CACHE) > _IM2COL_CACHE_MAX:
            _IM2COL_CACHE.popitem(last=False)
    return entry


def _gather_patches(x: np.ndarray, k, i, j, padding: int) -> np.ndarray:
    """Gather convolution patches with precomputed indices."""
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    return x[:, k, i, j]


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns: output (N, C*kh*kw, out_h*out_w)."""
    k, i, j, _, _ = im2col_indices(x.shape, kernel_h, kernel_w, stride, padding)
    return _gather_patches(x, k, i, j, padding)


_SCATTER_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_SCATTER_CACHE_MAX = 64


def _scatter_indices(input_shape, kernel_h, kernel_w, stride, padding, k, i, j):
    """Flattened (C*kh*kw, out_h*out_w) scatter positions into the padded image."""
    _, channels, height, width = input_shape
    key = (channels, height, width, kernel_h, kernel_w, stride, padding)
    if _IM2COL_CACHE_ENABLED:
        cached = _SCATTER_CACHE.get(key)
        if cached is not None:
            _SCATTER_CACHE.move_to_end(key)
            return cached
    padded_w = width + 2 * padding
    flat = (k * (height + 2 * padding) + i) * padded_w + j
    flat.flags.writeable = False
    if _IM2COL_CACHE_ENABLED:
        _SCATTER_CACHE[key] = flat
        while len(_SCATTER_CACHE) > _SCATTER_CACHE_MAX:
            _SCATTER_CACHE.popitem(last=False)
    return flat


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter columns back into image space (adjoint of :func:`im2col`).

    On the fast path the scatter is a single ``np.bincount`` over flattened
    positions, which is several times faster than the unbuffered
    ``np.add.at`` and bit-identical to it: both walk the same (index, value)
    sequence in the same order, so every output element accumulates its
    contributions identically.
    """
    batch, channels, height, width = input_shape
    cols = np.asarray(cols)
    scatter_dtype = cols.dtype if np.issubdtype(cols.dtype, np.floating) else np.float64
    k, i, j, _, _ = im2col_indices(input_shape, kernel_h, kernel_w, stride, padding)
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    if _CONV_FAST_ENABLED and scatter_dtype == np.float64:
        # bincount accumulates in float64 only, which is exactly the dtype
        # this scatter runs in throughout the training substrate.  One
        # bincount per image over the memoized flat positions: batch images
        # scatter to disjoint outputs, so this equals (and walks values in
        # the same order as) a single offset scatter, without materializing
        # a batch-sized int64 positions array every backward pass.
        flat = _scatter_indices(input_shape, kernel_h, kernel_w, stride, padding, k, i, j)
        positions = flat.ravel()
        per_image = channels * padded_h * padded_w
        weights = np.ascontiguousarray(cols, dtype=np.float64).reshape(batch, -1)
        padded = np.empty((batch, per_image))
        for image in range(batch):
            padded[image] = np.bincount(positions, weights=weights[image],
                                        minlength=per_image)
        padded = padded.reshape(batch, channels, padded_h, padded_w)
    else:
        padded = np.zeros((batch, channels, padded_h, padded_w), dtype=scatter_dtype)
        np.add.at(padded, (slice(None), k, i, j), cols)
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution (NCHW layout) implemented with im2col + matmul.

    The im2col/matmul decomposition is exactly the matrix view of Figure 3,
    which is also how the systolic array executes the layer, so the quantized
    training path sees the same matrix products as the hardware.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    batch, _, _, _ = x.shape
    out_channels, _, kernel_h, kernel_w = weight.shape
    k, i, j, out_h, out_w = im2col_indices(x.shape, kernel_h, kernel_w, stride, padding)
    cols = _gather_patches(x.data, k, i, j, padding)
    weight_matrix = weight.data.reshape(out_channels, -1)
    fast = _CONV_FAST_ENABLED
    if fast:
        # BLAS batched matmul; agrees with the einsum contraction to rounding
        # error (blocked accumulation order) and is several times faster.
        out_data = np.matmul(weight_matrix, cols)
    else:
        out_data = np.einsum("of,nfl->nol", weight_matrix, cols)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1)
    out_data = out_data.reshape(batch, out_channels, out_h, out_w)

    input_shape = x.shape

    def backward(grad):
        grad_matrix = grad.reshape(batch, out_channels, -1)
        if weight.requires_grad:
            if fast:
                # One large GEMM over the (batch, position) axes; no batched
                # (N, O, F) intermediate to materialize and reduce.
                grad_weight = np.tensordot(grad_matrix, cols, axes=([0, 2], [0, 2]))
            else:
                grad_weight = np.einsum("nol,nfl->of", grad_matrix, cols)
            weight._accumulate(grad_weight.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_matrix.sum(axis=(0, 2)))
        if x.requires_grad:
            if fast:
                grad_cols = np.matmul(weight_matrix.T, grad_matrix)
            else:
                grad_cols = np.einsum("of,nol->nfl", weight_matrix, grad_matrix)
            grad_x = col2im(grad_cols, input_shape, kernel_h, kernel_w, stride, padding)
            x._accumulate(grad_x)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward, "conv2d")


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over square windows (NCHW layout).

    Non-overlapping pooling (``stride == kernel_size``, dimensions divisible)
    takes a reshape-based fast path: windows become the (contiguous) last
    axis, whose argmax is several times faster than the strided axis-1 argmax
    of the im2col path.  Window elements appear in the same row-major order
    either way and no window overlaps another, so outputs and gradients are
    bit-identical between the two paths.
    """
    x = as_tensor(x)
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = x.shape
    if (_CONV_FAST_ENABLED and stride == kernel_size
            and height % kernel_size == 0 and width % kernel_size == 0):
        out_h, out_w = height // kernel_size, width // kernel_size
        window = kernel_size * kernel_size
        windows = (
            x.data.reshape(batch, channels, out_h, kernel_size, out_w, kernel_size)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(batch, channels, out_h, out_w, window)
        )
        max_idx = windows.argmax(axis=-1)
        out_data = np.take_along_axis(windows, max_idx[..., None], axis=-1)[..., 0]

        def backward(grad):
            if not x.requires_grad:
                return
            grad_windows = np.zeros_like(windows)
            np.put_along_axis(
                grad_windows, max_idx[..., None],
                grad.reshape(batch, channels, out_h, out_w, 1), axis=-1,
            )
            grad_x = (
                grad_windows.reshape(batch, channels, out_h, out_w, kernel_size, kernel_size)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(x.shape)
            )
            x._accumulate(grad_x)

        return Tensor._make(out_data, (x,), backward, "max_pool2d")

    folded = x.data.reshape(batch * channels, 1, height, width)
    k, i, j, out_h, out_w = im2col_indices(folded.shape, kernel_size, kernel_size, stride, 0)
    cols = _gather_patches(folded, k, i, j, 0)
    max_idx = cols.argmax(axis=1)
    out_data = np.take_along_axis(cols, max_idx[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    def backward(grad):
        if not x.requires_grad:
            return
        grad_flat = grad.reshape(batch * channels, 1, -1)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, max_idx[:, None, :], grad_flat, axis=1)
        grad_x = col2im(grad_cols, folded.shape, kernel_size, kernel_size, stride, 0)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over square windows (NCHW layout)."""
    x = as_tensor(x)
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = x.shape
    folded_shape = (batch * channels, 1, height, width)
    k, i, j, out_h, out_w = im2col_indices(folded_shape, kernel_size, kernel_size, stride, 0)
    cols = _gather_patches(x.data.reshape(folded_shape), k, i, j, 0)
    out_data = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)
    window = kernel_size * kernel_size

    def backward(grad):
        if not x.requires_grad:
            return
        grad_flat = grad.reshape(batch * channels, 1, -1)
        grad_cols = np.broadcast_to(grad_flat / window, cols.shape).copy()
        grad_x = col2im(grad_cols, folded_shape, kernel_size, kernel_size, stride, 0)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward, "avg_pool2d")


# --------------------------------------------------------------------------- #
# Embedding, dropout, one-hot, linear
# --------------------------------------------------------------------------- #
def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` by integer ``indices`` (any shape)."""
    weight = as_tensor(weight)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(grad):
        if weight.requires_grad:
            grad_weight = np.zeros_like(weight.data)
            np.add.at(grad_weight, indices.reshape(-1), grad.reshape(-1, weight.shape[-1]))
            weight._accumulate(grad_weight)

    return Tensor._make(out_data, (weight,), backward, "embedding")


def dropout(x: Tensor, p: float, training: bool = True, rng=None) -> Tensor:
    """Inverted dropout: zero a fraction ``p`` of values and rescale the rest.

    The mask is built in the input's floating dtype so float32 activation
    pipelines are not silently upcast to float64 by the multiply.
    """
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    dtype = x.data.dtype if np.issubdtype(x.data.dtype, np.floating) else np.float64
    mask = (rng.random(x.shape) >= p).astype(dtype)
    mask *= 1.0 / (1.0 - p)
    out_data = x.data * mask

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward, "dropout")


def one_hot(indices: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """One-hot encode integer class indices.

    ``dtype`` selects the floating dtype of the encoding; losses pass their
    logits dtype so float32 pipelines are not upcast by the target tensor.
    """
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    encoded = np.zeros((indices.size, num_classes), dtype=dtype)
    encoded[np.arange(indices.size), indices] = 1.0
    return encoded


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = as_tensor(x) @ as_tensor(weight).swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out


# --------------------------------------------------------------------------- #
# Quantization hooks
# --------------------------------------------------------------------------- #
def fake_quantize(x: Tensor, quantize_fn: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Quantize the forward values, pass gradients straight through.

    This is the standard straight-through estimator used for quantized
    weights and activations: the matrix products see quantized values while
    the full-precision master copy keeps receiving exact gradients.
    """
    x = as_tensor(x)
    out_data = quantize_fn(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward, "fake_quantize")


def quantize_gradient(x: Tensor, quantize_fn: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Identity forward; quantize the incoming gradient during backward.

    Inserted at a layer's output so that the output gradient ``∇O`` is
    BFP-quantized before it drives the two backward-pass matrix products of
    Figure 3, which is where the FAST hardware applies the BFP converter.
    """
    x = as_tensor(x)
    out_data = x.data

    def backward(grad):
        if x.requires_grad:
            x._accumulate(quantize_fn(grad))

    return Tensor._make(out_data, (x,), backward, "quantize_gradient")
