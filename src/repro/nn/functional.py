"""Functional neural-network operations built on :class:`~repro.nn.tensor.Tensor`.

Contains the structured operations that need dedicated backward rules
(convolution, pooling, embedding lookup, dropout) plus the two quantization
hooks used by the fake-quantized training substrate:

* :func:`fake_quantize` -- replaces the forward values with their quantized
  counterparts and passes gradients straight through (the straight-through
  estimator used for weights and activations).
* :func:`quantize_gradient` -- identity on the forward pass but quantizes the
  *incoming gradient* on the backward pass, which models the BFP conversion
  of the output gradient ``∇O`` before it is used to compute ``∇A`` and
  ``∇W`` (Figure 3 / Figure 16).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Optional, Tuple

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "im2col_indices",
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_infer",
    "max_pool2d",
    "max_pool2d_infer",
    "avg_pool2d",
    "avg_pool2d_infer",
    "embedding",
    "dropout",
    "fake_quantize",
    "quantize_gradient",
    "one_hot",
    "linear",
    "im2col_cache_enabled",
    "set_im2col_cache_enabled",
    "clear_im2col_cache",
    "conv_fast_path_enabled",
    "set_conv_fast_path_enabled",
    "set_profiler",
]

#: Observability hook, same contract as ``repro.core.kernels._PROFILER``:
#: ``None`` keeps the GEMM/im2col hot paths on their pre-existing code path
#: (one global load + branch, zero allocations); installed/removed by
#: :mod:`repro.observability`.
_PROFILER = None


def set_profiler(profiler) -> object:
    """Install (or with ``None`` remove) the profiler; returns the previous."""
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous

#: When enabled (default), convolution forward/backward products run through
#: BLAS ``matmul`` instead of ``np.einsum`` and ``col2im`` scatters through a
#: single ``np.bincount`` instead of the unbuffered ``np.add.at``.  The
#: bincount scatter walks the same (index, value) sequence as ``add.at`` and
#: is bit-identical; the BLAS products use a different (blocked) accumulation
#: order and agree to rounding error.  Benchmarks disable this to time the
#: pre-fast-path step.
_CONV_FAST_ENABLED = True


def conv_fast_path_enabled() -> bool:
    return _CONV_FAST_ENABLED


def set_conv_fast_path_enabled(enabled: bool) -> bool:
    """Enable/disable the BLAS/bincount convolution path; returns the previous setting."""
    global _CONV_FAST_ENABLED
    previous = _CONV_FAST_ENABLED
    _CONV_FAST_ENABLED = bool(enabled)
    return previous


# --------------------------------------------------------------------------- #
# im2col-based convolution
# --------------------------------------------------------------------------- #
#: Memoized gather-index arrays keyed on the convolution geometry.  Layer
#: geometry is fixed across a training run, so each conv/pool layer derives
#: its (k, i, j) arrays exactly once instead of several times per step (the
#: forward previously built them twice -- inside ``im2col`` and again for the
#: output size -- and the backward a third time for ``col2im``).
_IM2COL_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_IM2COL_CACHE_MAX = 256
_IM2COL_CACHE_ENABLED = True


def im2col_cache_enabled() -> bool:
    return _IM2COL_CACHE_ENABLED


def set_im2col_cache_enabled(enabled: bool) -> bool:
    """Enable/disable im2col index memoization; returns the previous setting."""
    global _IM2COL_CACHE_ENABLED
    previous = _IM2COL_CACHE_ENABLED
    _IM2COL_CACHE_ENABLED = bool(enabled)
    return previous


def clear_im2col_cache() -> None:
    """Drop all memoized gather *and* scatter index arrays."""
    _IM2COL_CACHE.clear()
    _SCATTER_CACHE.clear()


def _build_im2col_indices(channels, height, width, kernel_h, kernel_w, stride, padding):
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty for input "
            f"(N, {channels}, {height}, {width}), "
            f"kernel ({kernel_h}, {kernel_w}), stride {stride}, padding {padding}"
        )

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    for array in (k, i, j):
        array.flags.writeable = False
    return k, i, j, out_h, out_w


def im2col_indices(
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
):
    """Index arrays that gather convolution patches from a padded input.

    The arrays depend only on ``(C, H, W, kernel, stride, padding)`` -- not
    the batch size -- and are memoized on that key (returned read-only; do
    not mutate them).  Disable with :func:`set_im2col_cache_enabled` to
    measure the uncached path.
    """
    _, channels, height, width = input_shape
    key = (channels, height, width, kernel_h, kernel_w, stride, padding)
    if _IM2COL_CACHE_ENABLED:
        cached = _IM2COL_CACHE.get(key)
        if cached is not None:
            _IM2COL_CACHE.move_to_end(key)
            return cached
    entry = _build_im2col_indices(channels, height, width, kernel_h, kernel_w,
                                  stride, padding)
    if _IM2COL_CACHE_ENABLED:
        _IM2COL_CACHE[key] = entry
        while len(_IM2COL_CACHE) > _IM2COL_CACHE_MAX:
            _IM2COL_CACHE.popitem(last=False)
    return entry


def _gather_patches(x: np.ndarray, k, i, j, padding: int) -> np.ndarray:
    """Gather convolution patches with precomputed indices."""
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    return x[:, k, i, j]


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns: output (N, C*kh*kw, out_h*out_w)."""
    profiler = _PROFILER
    start = time.perf_counter() if profiler is not None else 0.0
    k, i, j, _, _ = im2col_indices(x.shape, kernel_h, kernel_w, stride, padding)
    cols = _gather_patches(x, k, i, j, padding)
    if profiler is not None:
        profiler.record("im2col", time.perf_counter() - start, cols.size)
    return cols


_SCATTER_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_SCATTER_CACHE_MAX = 64


def _scatter_indices(input_shape, kernel_h, kernel_w, stride, padding, k, i, j):
    """Flattened (C*kh*kw, out_h*out_w) scatter positions into the padded image."""
    _, channels, height, width = input_shape
    key = (channels, height, width, kernel_h, kernel_w, stride, padding)
    if _IM2COL_CACHE_ENABLED:
        cached = _SCATTER_CACHE.get(key)
        if cached is not None:
            _SCATTER_CACHE.move_to_end(key)
            return cached
    padded_w = width + 2 * padding
    flat = (k * (height + 2 * padding) + i) * padded_w + j
    flat.flags.writeable = False
    if _IM2COL_CACHE_ENABLED:
        _SCATTER_CACHE[key] = flat
        while len(_SCATTER_CACHE) > _SCATTER_CACHE_MAX:
            _SCATTER_CACHE.popitem(last=False)
    return flat


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter columns back into image space (adjoint of :func:`im2col`).

    On the fast path the scatter is a single ``np.bincount`` over flattened
    positions, which is several times faster than the unbuffered
    ``np.add.at``.  For float64 columns it is bit-identical to ``add.at``:
    both walk the same (index, value) sequence in the same order, so every
    output element accumulates its contributions identically.  The output
    dtype always matches the columns' floating dtype: ``np.bincount`` only
    accumulates in float64, so float32 columns are accumulated in float64
    and rounded once at the end -- at least as accurate as the chained
    float32 adds of ``add.at`` -- keeping a float32 pipeline float32 end to
    end without falling back to the slow scatter.
    """
    batch, channels, height, width = input_shape
    cols = np.asarray(cols)
    scatter_dtype = cols.dtype if np.issubdtype(cols.dtype, np.floating) else np.float64
    k, i, j, _, _ = im2col_indices(input_shape, kernel_h, kernel_w, stride, padding)
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    if _CONV_FAST_ENABLED:
        # One bincount per image over the memoized flat positions: batch
        # images scatter to disjoint outputs, so this equals (and walks
        # values in the same order as) a single offset scatter, without
        # materializing a batch-sized int64 positions array every backward
        # pass.
        flat = _scatter_indices(input_shape, kernel_h, kernel_w, stride, padding, k, i, j)
        positions = flat.ravel()
        per_image = channels * padded_h * padded_w
        weights = np.ascontiguousarray(cols, dtype=np.float64).reshape(batch, -1)
        padded = np.empty((batch, per_image), dtype=np.float64)
        for image in range(batch):
            padded[image] = np.bincount(positions, weights=weights[image],
                                        minlength=per_image)
        padded = padded.reshape(batch, channels, padded_h, padded_w)
        if scatter_dtype != np.float64:
            padded = padded.astype(scatter_dtype)
    else:
        padded = np.zeros((batch, channels, padded_h, padded_w), dtype=scatter_dtype)
        np.add.at(padded, (slice(None), k, i, j), cols)
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def _conv2d_forward(
    x_data: np.ndarray,
    weight_data: np.ndarray,
    bias_data: Optional[np.ndarray],
    stride: int,
    padding: int,
    groups: int,
    need_cols: bool = True,
):
    """Pure-array convolution forward shared by autograd and serving.

    Returns ``(out_data, cols, out_h, out_w)``; ``cols`` is the
    ``(batch, features, positions)`` im2col patch matrix the backward pass
    contracts against (``None`` when ``need_cols=False``).

    On the fast path the products run as one *fat* GEMM over the flattened
    (batch, position) axis -- a single ``(O, F) x (F, N*L)`` product instead
    of a batched matmul looping ``batch`` GEMM slices -- which keeps BLAS in
    its efficient blocking regime (measured ~2.5x over the per-slice loop at
    batch 16).  This is exactly where batched serving throughput comes from.
    Grad-free callers (``need_cols=False``) gather the patches directly in
    the fat ``(features, batch*positions)`` layout, skipping the transpose
    copy; the gathered values and GEMM shape are identical either way, so
    autograd and serving produce bit-identical outputs.

    Grouped convolutions use the same decomposition per group: the patch
    rows are channel-major, so a ``(groups, features, N*L)`` view of the
    columns gives exactly the per-group blocks (the depthwise case,
    ``Og=1, F=k*k``, is pathological for a per-slice loop).
    """
    profiler = _PROFILER
    start = time.perf_counter() if profiler is not None else 0.0
    batch = x_data.shape[0]
    out_channels, in_per_group, kernel_h, kernel_w = weight_data.shape
    k, i, j, out_h, out_w = im2col_indices(x_data.shape, kernel_h, kernel_w, stride, padding)
    fast = _CONV_FAST_ENABLED
    positions = out_h * out_w
    use_fat_gather = fast and batch > 1 and not need_cols
    if use_fat_gather:
        padded = (np.pad(x_data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
                  if padding else x_data)
        batch_index = np.arange(batch).reshape(1, batch, 1)
        # (features_total, batch, positions), contiguous in the fat layout.
        fat = padded[batch_index, k[:, None, :], i[:, None, :], j[:, None, :]]
        cols = None
    else:
        cols = _gather_patches(x_data, k, i, j, padding)
        fat = None
    if groups == 1:
        weight_matrix = weight_data.reshape(out_channels, -1)
        if fast:
            if batch == 1:
                out_data = np.matmul(weight_matrix, cols[0])[None]
            else:
                if fat is None:
                    fat = cols.transpose(1, 0, 2)
                cols_fat = fat.reshape(weight_matrix.shape[1], -1)
                out_data = np.matmul(weight_matrix, cols_fat)
                out_data = out_data.reshape(out_channels, batch, positions).transpose(1, 0, 2)
        else:
            out_data = np.einsum("of,nfl->nol", weight_matrix, cols)
    else:
        features = in_per_group * kernel_h * kernel_w
        out_per_group = out_channels // groups
        weight_grouped = weight_data.reshape(groups, out_per_group, features)
        if fast:
            if batch == 1:
                out_data = np.matmul(weight_grouped,
                                     cols.reshape(batch, groups, features, -1)[0])[None]
            else:
                if fat is None:
                    fat = cols.reshape(batch, groups, features, -1).transpose(1, 2, 0, 3)
                cols_fat = fat.reshape(groups, features, -1)
                out_data = np.matmul(weight_grouped, cols_fat)
                out_data = (out_data.reshape(groups, out_per_group, batch, positions)
                            .transpose(2, 0, 1, 3))
        else:
            out_data = np.einsum("gof,ngfl->ngol", weight_grouped,
                                 cols.reshape(batch, groups, features, -1))
        out_data = out_data.reshape(batch, out_channels, -1)
    if bias_data is not None:
        out_data = out_data + bias_data.reshape(1, -1, 1)
    out_data = out_data.reshape(batch, out_channels, out_h, out_w)
    if profiler is not None:
        profiler.record("conv2d_forward", time.perf_counter() - start,
                        out_data.size)
    return out_data, cols, out_h, out_w


def conv2d_infer(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Grad-free convolution on plain arrays (the serving fast path).

    Runs the exact forward computation of :func:`conv2d` -- same gather
    indices, same matmul -- without building tensors or retaining the patch
    matrix for a backward pass.
    """
    out, _, _, _ = _conv2d_forward(np.asarray(x), np.asarray(weight),
                                   None if bias is None else np.asarray(bias),
                                   stride, padding, groups, need_cols=False)
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2D convolution (NCHW layout) implemented with im2col + matmul.

    The im2col/matmul decomposition is exactly the matrix view of Figure 3,
    which is also how the systolic array executes the layer, so the quantized
    training path sees the same matrix products as the hardware.  ``groups``
    runs a grouped convolution (depthwise when ``groups == channels``) as a
    single batched product over the group axis.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    batch = x.shape[0]
    out_channels, in_per_group, kernel_h, kernel_w = weight.shape
    if x.shape[1] != in_per_group * groups or out_channels % groups:
        raise ValueError(
            f"conv2d shape mismatch: input channels {x.shape[1]}, weight "
            f"{weight.shape}, groups {groups}"
        )
    out_data, cols, out_h, out_w = _conv2d_forward(
        x.data, weight.data, None if bias is None else bias.data,
        stride, padding, groups)
    fast = _CONV_FAST_ENABLED
    input_shape = x.shape
    out_per_group = out_channels // groups
    features = in_per_group * kernel_h * kernel_w

    def backward(grad):
        if groups == 1:
            grad_matrix = grad.reshape(batch, out_channels, -1)
            weight_matrix = weight.data.reshape(out_channels, -1)
            if weight.requires_grad:
                if fast:
                    # One large GEMM over the (batch, position) axes; no
                    # batched (N, O, F) intermediate to materialize/reduce.
                    grad_weight = np.tensordot(grad_matrix, cols, axes=([0, 2], [0, 2]))
                else:
                    grad_weight = np.einsum("nol,nfl->of", grad_matrix, cols)
                weight._accumulate(grad_weight.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_matrix.sum(axis=(0, 2)))
            if x.requires_grad:
                if fast:
                    grad_cols = np.matmul(weight_matrix.T, grad_matrix)
                else:
                    grad_cols = np.einsum("of,nol->nfl", weight_matrix, grad_matrix)
                grad_x = col2im(grad_cols, input_shape, kernel_h, kernel_w, stride, padding)
                x._accumulate(grad_x)
            return
        grad_matrix = grad.reshape(batch, groups, out_per_group, -1)
        cols_grouped = cols.reshape(batch, groups, features, -1)
        weight_grouped = weight.data.reshape(groups, out_per_group, features)
        if weight.requires_grad:
            if fast:
                grad_weight = np.matmul(
                    grad_matrix, np.swapaxes(cols_grouped, -1, -2)).sum(axis=0)
            else:
                grad_weight = np.einsum("ngol,ngfl->gof", grad_matrix, cols_grouped)
            weight._accumulate(grad_weight.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_matrix.sum(axis=(0, 3)).reshape(-1))
        if x.requires_grad:
            if fast:
                grad_cols = np.matmul(np.swapaxes(weight_grouped, -1, -2), grad_matrix)
            else:
                grad_cols = np.einsum("gof,ngol->ngfl", weight_grouped, grad_matrix)
            grad_cols = grad_cols.reshape(batch, groups * features, -1)
            grad_x = col2im(grad_cols, input_shape, kernel_h, kernel_w, stride, padding)
            x._accumulate(grad_x)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward, "conv2d")


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def _pool_uses_reshape(height: int, width: int, kernel_size: int, stride: int) -> bool:
    """Whether the non-overlapping reshape fast path applies."""
    return (_CONV_FAST_ENABLED and stride == kernel_size
            and height % kernel_size == 0 and width % kernel_size == 0)


def _pool_windows(x_data: np.ndarray, kernel_size: int) -> np.ndarray:
    """Non-overlapping pooling windows as the (contiguous) last axis.

    Output shape ``(batch, channels, out_h, out_w, kernel*kernel)``; window
    elements appear in the same row-major order as the im2col path's rows.
    """
    batch, channels, height, width = x_data.shape
    out_h, out_w = height // kernel_size, width // kernel_size
    return (
        x_data.reshape(batch, channels, out_h, kernel_size, out_w, kernel_size)
        .transpose(0, 1, 2, 4, 3, 5)
        .reshape(batch, channels, out_h, out_w, kernel_size * kernel_size)
    )


def _pool_cols(x_data: np.ndarray, kernel_size: int, stride: int):
    """im2col patch matrix for (possibly overlapping) pooling windows."""
    batch, channels, height, width = x_data.shape
    folded = x_data.reshape(batch * channels, 1, height, width)
    k, i, j, out_h, out_w = im2col_indices(folded.shape, kernel_size, kernel_size, stride, 0)
    return _gather_patches(folded, k, i, j, 0), folded.shape, out_h, out_w


def max_pool2d_infer(x: np.ndarray, kernel_size: int, stride: Optional[int] = None) -> np.ndarray:
    """Grad-free max pooling on plain arrays (same values as :func:`max_pool2d`).

    The non-overlapping case reduces ``kernel*kernel`` strided views with
    ``np.maximum`` instead of materializing the window tensor: max selection
    returns the same value regardless of comparison order, so this is
    value-identical to the autograd path while skipping its big transpose
    copy (the autograd path needs the window layout for argmax indices;
    inference does not).
    """
    x = np.asarray(x)
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = x.shape
    if _pool_uses_reshape(height, width, kernel_size, stride):
        return np.maximum.reduce([
            x[:, :, di::kernel_size, dj::kernel_size]
            for di in range(kernel_size) for dj in range(kernel_size)
        ])
    cols, _, out_h, out_w = _pool_cols(x, kernel_size, stride)
    return cols.max(axis=1).reshape(batch, channels, out_h, out_w)


def avg_pool2d_infer(x: np.ndarray, kernel_size: int, stride: Optional[int] = None) -> np.ndarray:
    """Grad-free average pooling on plain arrays (same numerics as :func:`avg_pool2d`)."""
    x = np.asarray(x)
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = x.shape
    if _pool_uses_reshape(height, width, kernel_size, stride):
        return _pool_windows(x, kernel_size).mean(axis=-1)
    cols, _, out_h, out_w = _pool_cols(x, kernel_size, stride)
    return cols.mean(axis=1).reshape(batch, channels, out_h, out_w)


def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over square windows (NCHW layout).

    Non-overlapping pooling (``stride == kernel_size``, dimensions divisible)
    takes a reshape-based fast path: windows become the (contiguous) last
    axis, whose argmax is several times faster than the strided axis-1 argmax
    of the im2col path.  Window elements appear in the same row-major order
    either way and no window overlaps another, so outputs and gradients are
    bit-identical between the two paths.
    """
    x = as_tensor(x)
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = x.shape
    if _pool_uses_reshape(height, width, kernel_size, stride):
        out_h, out_w = height // kernel_size, width // kernel_size
        window = kernel_size * kernel_size
        windows = _pool_windows(x.data, kernel_size)
        max_idx = windows.argmax(axis=-1)
        out_data = np.take_along_axis(windows, max_idx[..., None], axis=-1)[..., 0]

        def backward(grad):
            if not x.requires_grad:
                return
            grad_windows = np.zeros_like(windows)
            np.put_along_axis(
                grad_windows, max_idx[..., None],
                grad.reshape(batch, channels, out_h, out_w, 1), axis=-1,
            )
            grad_x = (
                grad_windows.reshape(batch, channels, out_h, out_w, kernel_size, kernel_size)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(x.shape)
            )
            x._accumulate(grad_x)

        return Tensor._make(out_data, (x,), backward, "max_pool2d")

    cols, folded_shape, out_h, out_w = _pool_cols(x.data, kernel_size, stride)
    max_idx = cols.argmax(axis=1)
    out_data = np.take_along_axis(cols, max_idx[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    def backward(grad):
        if not x.requires_grad:
            return
        grad_flat = grad.reshape(batch * channels, 1, -1)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, max_idx[:, None, :], grad_flat, axis=1)
        grad_x = col2im(grad_cols, folded_shape, kernel_size, kernel_size, stride, 0)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over square windows (NCHW layout).

    Non-overlapping pooling takes the same reshape-based fast path as
    :func:`max_pool2d`: the window mean reduces the contiguous last axis, and
    the backward pass spreads ``grad / window`` by the inverse reshape
    instead of an im2col scatter.  The backward map is bit-identical to the
    im2col path (each input receives exactly one ``grad / window``
    contribution either way); the forward mean agrees to reduction-order
    rounding error -- NumPy's pairwise reduction visits the same elements
    but may pair them differently across memory layouts -- and is exact for
    power-of-two windows.
    """
    x = as_tensor(x)
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = x.shape
    window = kernel_size * kernel_size
    if _pool_uses_reshape(height, width, kernel_size, stride):
        out_h, out_w = height // kernel_size, width // kernel_size
        windows = _pool_windows(x.data, kernel_size)
        out_data = windows.mean(axis=-1)

        def backward(grad):
            if not x.requires_grad:
                return
            spread = np.broadcast_to((grad / window)[..., None], windows.shape)
            grad_x = (
                spread.reshape(batch, channels, out_h, out_w, kernel_size, kernel_size)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(x.shape)
            )
            x._accumulate(np.ascontiguousarray(grad_x))

        return Tensor._make(out_data, (x,), backward, "avg_pool2d")

    cols, folded_shape, out_h, out_w = _pool_cols(x.data, kernel_size, stride)
    out_data = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)

    def backward(grad):
        if not x.requires_grad:
            return
        grad_flat = grad.reshape(batch * channels, 1, -1)
        grad_cols = np.broadcast_to(grad_flat / window, cols.shape).copy()
        grad_x = col2im(grad_cols, folded_shape, kernel_size, kernel_size, stride, 0)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward, "avg_pool2d")


# --------------------------------------------------------------------------- #
# Embedding, dropout, one-hot, linear
# --------------------------------------------------------------------------- #
def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` by integer ``indices`` (any shape)."""
    weight = as_tensor(weight)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(grad):
        if weight.requires_grad:
            grad_weight = np.zeros_like(weight.data)
            np.add.at(grad_weight, indices.reshape(-1), grad.reshape(-1, weight.shape[-1]))
            weight._accumulate(grad_weight)

    return Tensor._make(out_data, (weight,), backward, "embedding")


def dropout(x: Tensor, p: float, training: bool = True, rng=None) -> Tensor:
    """Inverted dropout: zero a fraction ``p`` of values and rescale the rest.

    The mask is built in the input's floating dtype so float32 activation
    pipelines are not silently upcast to float64 by the multiply.
    """
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
    dtype = x.data.dtype if np.issubdtype(x.data.dtype, np.floating) else np.float64
    mask = (rng.random(x.shape) >= p).astype(dtype)
    mask *= 1.0 / (1.0 - p)
    out_data = x.data * mask

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward, "dropout")


def one_hot(indices: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """One-hot encode integer class indices.

    ``dtype`` selects the floating dtype of the encoding; losses pass their
    logits dtype so float32 pipelines are not upcast by the target tensor.
    """
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    encoded = np.zeros((indices.size, num_classes), dtype=dtype)
    encoded[np.arange(indices.size), indices] = 1.0
    return encoded


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` (PyTorch weight layout)."""
    profiler = _PROFILER
    start = time.perf_counter() if profiler is not None else 0.0
    out = as_tensor(x) @ as_tensor(weight).swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    if profiler is not None:
        profiler.record("linear", time.perf_counter() - start, out.data.size)
    return out


# --------------------------------------------------------------------------- #
# Quantization hooks
# --------------------------------------------------------------------------- #
def fake_quantize(x: Tensor, quantize_fn: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Quantize the forward values, pass gradients straight through.

    This is the standard straight-through estimator used for quantized
    weights and activations: the matrix products see quantized values while
    the full-precision master copy keeps receiving exact gradients.
    """
    x = as_tensor(x)
    out_data = quantize_fn(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward, "fake_quantize")


def quantize_gradient(x: Tensor, quantize_fn: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Identity forward; quantize the incoming gradient during backward.

    Inserted at a layer's output so that the output gradient ``∇O`` is
    BFP-quantized before it drives the two backward-pass matrix products of
    Figure 3, which is where the FAST hardware applies the BFP converter.
    """
    x = as_tensor(x)
    out_data = x.data

    def backward(grad):
        if x.requires_grad:
            x._accumulate(quantize_fn(grad))

    return Tensor._make(out_data, (x,), backward, "quantize_gradient")
