"""Learning-rate schedules.

The paper's training recipes use step decay (YOLOv2: divide the learning rate
by 10 at epochs 60 and 90; the CNNs follow the standard PyTorch ImageNet
schedule).  These schedulers wrap an :class:`~repro.nn.optim.Optimizer` and
update its learning rate once per epoch via :meth:`step`.
"""

from __future__ import annotations

import math
from typing import Sequence

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "MultiStepLR", "CosineAnnealingLR", "WarmupLR"]


class LRScheduler:
    """Base class: tracks the epoch count and the optimizer's base learning rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    def get_lr(self, epoch: int) -> float:
        """Learning rate to use at ``epoch`` (0-based)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.last_epoch += 1
        lr = self.get_lr(self.last_epoch)
        self.optimizer.set_lr(lr)
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` at each epoch in ``milestones``.

    ``MultiStepLR(optimizer, [60, 90])`` reproduces the paper's YOLOv2 recipe.
    """

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for milestone in self.milestones if epoch >= milestone)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class WarmupLR(LRScheduler):
    """Linear warm-up over ``warmup_epochs`` followed by another scheduler."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, after: LRScheduler):
        super().__init__(optimizer)
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def get_lr(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        return self.after.get_lr(epoch - self.warmup_epochs)
