"""Multi-head attention and Transformer building blocks.

The paper evaluates FAST on a 12-layer, 12-head Transformer for IWSLT14
German-English translation.  This module provides an architecture-faithful
(if smaller by default) encoder-decoder Transformer built entirely from the
autograd substrate so every matrix product can be fake-quantized.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .modules import Dropout, LayerNorm, Module
from .quantized import QuantizedLinear as Linear
from .tensor import Tensor, as_tensor

__all__ = [
    "scaled_dot_product_attention",
    "MultiHeadAttention",
    "FeedForward",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "positional_encoding",
    "causal_mask",
]


def causal_mask(length: int) -> np.ndarray:
    """Additive mask that blocks attention to future positions.

    Built at float64; :func:`scaled_dot_product_attention` casts additive
    masks to the scores dtype, so float32 pipelines are not upcast.
    """
    mask = np.triu(np.full((length, length), -1e9, dtype=np.float64), k=1)
    return mask


def positional_encoding(length: int, dim: int) -> np.ndarray:
    """Sinusoidal positional encodings of shape (length, dim)."""
    positions = np.arange(length)[:, None]
    dims = np.arange(dim)[None, :]
    angles = positions / np.power(10000.0, (2 * (dims // 2)) / dim)
    # float64 on purpose: registered as a module buffer, so Module.to()
    # casts it alongside the rest of the model state.
    encoding = np.zeros((length, dim), dtype=np.float64)
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Attention(Q, K, V) = softmax(Q K^T / sqrt(d)) V.

    Inputs have shape (batch, heads, length, head_dim).  ``mask`` is an
    additive mask broadcastable to (batch, heads, length, length).
    """
    head_dim = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / np.sqrt(head_dim))
    if mask is not None:
        # Additive masks follow the scores dtype so a float32 attention
        # pipeline is not upcast by the (float64-built) mask array.
        scores = scores + Tensor(np.asarray(mask), dtype=scores.data.dtype)
    weights = scores.softmax(axis=-1)
    return weights @ value


class MultiHeadAttention(Module):
    """Multi-head attention with separate Q/K/V/output projections."""

    def __init__(self, embed_dim: int, num_heads: int, dropout: float = 0.0, rng=None):
        super().__init__()
        if embed_dim % num_heads:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.embed_dim)

    def forward(self, query, key=None, value=None, mask: Optional[np.ndarray] = None) -> Tensor:
        query = as_tensor(query)
        key = query if key is None else as_tensor(key)
        value = key if value is None else as_tensor(value)
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))
        attended = scaled_dot_product_attention(q, k, v, mask=mask)
        attended = self._merge_heads(attended)
        return self.dropout(self.out_proj(attended))


class FeedForward(Module):
    """Position-wise feed-forward network with a ReLU hidden layer."""

    def __init__(self, embed_dim: int, hidden_dim: int, dropout: float = 0.0, rng=None):
        super().__init__()
        self.fc1 = Linear(embed_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, embed_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x) -> Tensor:
        return self.dropout(self.fc2(self.fc1(x).relu()))


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer encoder layer: self-attention + feed-forward."""

    def __init__(self, embed_dim: int, num_heads: int, hidden_dim: int, dropout: float = 0.0, rng=None):
        super().__init__()
        self.self_attention = MultiHeadAttention(embed_dim, num_heads, dropout, rng=rng)
        self.feed_forward = FeedForward(embed_dim, hidden_dim, dropout, rng=rng)
        self.norm1 = LayerNorm(embed_dim)
        self.norm2 = LayerNorm(embed_dim)

    def forward(self, x, mask: Optional[np.ndarray] = None) -> Tensor:
        x = as_tensor(x)
        x = x + self.self_attention(self.norm1(x), mask=mask)
        x = x + self.feed_forward(self.norm2(x))
        return x


class TransformerDecoderLayer(Module):
    """Pre-norm Transformer decoder layer: masked self-attention, cross-attention, feed-forward."""

    def __init__(self, embed_dim: int, num_heads: int, hidden_dim: int, dropout: float = 0.0, rng=None):
        super().__init__()
        self.self_attention = MultiHeadAttention(embed_dim, num_heads, dropout, rng=rng)
        self.cross_attention = MultiHeadAttention(embed_dim, num_heads, dropout, rng=rng)
        self.feed_forward = FeedForward(embed_dim, hidden_dim, dropout, rng=rng)
        self.norm1 = LayerNorm(embed_dim)
        self.norm2 = LayerNorm(embed_dim)
        self.norm3 = LayerNorm(embed_dim)

    def forward(self, x, memory, self_mask: Optional[np.ndarray] = None,
                memory_mask: Optional[np.ndarray] = None) -> Tensor:
        x = as_tensor(x)
        memory = as_tensor(memory)
        x = x + self.self_attention(self.norm1(x), mask=self_mask)
        x = x + self.cross_attention(self.norm2(x), key=memory, value=memory, mask=memory_mask)
        x = x + self.feed_forward(self.norm3(x))
        return x
