"""repro -- reproduction of "FAST: DNN Training Under Variable Precision Block
Floating Point with Stochastic Rounding" (Zhang, McDanel, Kung; HPCA 2022).

Package layout (see DESIGN.md for the full system inventory):

* :mod:`repro.core`      -- BFP quantization, stochastic rounding, mantissa
  chunking, the BFP converter, precision policies (Algorithm 1), memory layout.
* :mod:`repro.formats`   -- the number formats of Figure 2 (FP, INT, BFP).
* :mod:`repro.nn`        -- NumPy autograd NN substrate with quantized layers.
* :mod:`repro.models`    -- scaled-down evaluation models (ResNets, VGG,
  MobileNet-v2, Transformer, YOLO).
* :mod:`repro.data`      -- synthetic dataset substitutes for CIFAR/ImageNet/
  IWSLT14/VOC.
* :mod:`repro.training`  -- quantized training loops, precision schedules,
  metrics and time-to-accuracy analysis.
* :mod:`repro.serving`   -- frozen BFP model export, npz checkpoints, and a
  dynamic-batching inference server.
* :mod:`repro.hardware`  -- fMAC/systolic-array/SRAM/system models and the
  training time/energy model.
* :mod:`repro.analysis`  -- exponent statistics, sensitivity sweeps, report
  rendering.
* :mod:`repro.observability` -- metrics registry (Prometheus/JSON export),
  sampled request tracing (Chrome trace events), kernel profiling hooks.
"""

from . import (
    analysis,
    core,
    data,
    formats,
    hardware,
    models,
    nn,
    observability,
    serving,
    training,
)
from .core import BFPConfig, BFPTensor, bfp_quantize, bfp_quantize_tensor, relative_improvement
from .formats import get_format
from .training import ClassificationTrainer, FASTSchedule, build_schedule

__version__ = "1.0.0"

__all__ = [
    "core",
    "formats",
    "nn",
    "models",
    "data",
    "training",
    "serving",
    "hardware",
    "analysis",
    "observability",
    "BFPConfig",
    "BFPTensor",
    "bfp_quantize",
    "bfp_quantize_tensor",
    "relative_improvement",
    "get_format",
    "ClassificationTrainer",
    "FASTSchedule",
    "build_schedule",
    "__version__",
]
