"""Functional model of the FAST MAC (fMAC) of Figures 11 and 13.

The fMAC computes the dot product between two BFP groups.  Mantissas are
processed in fixed-width chunks (2 bits in the paper); multiplying operands
with ``mx``- and ``my``-bit mantissas takes ``(mx/2) * (my/2)`` passes, with
the BFP converter pre-decrementing the exponent of lower-order chunks so the
fMAC stays agnostic to chunk position.

This model is bit-exact with respect to the packed :class:`BFPTensor`
representation (the chunked evaluation reproduces the direct integer dot
product exactly) and also reports the pass count, which the performance model
of Figure 19/20 uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.bfp import BFPTensor, bfp_quantize_tensor
from ..core.chunks import decompose_mantissas, num_chunks, passes_required

__all__ = [
    "FMACResult",
    "fmac_group_dot",
    "fmac_dot_product",
    "fmac_dot_product_reference",
    "bfp_matmul",
]


@dataclass
class FMACResult:
    """Value and cost of one fMAC group dot product."""

    value: float
    passes: int
    multiplications: int


def fmac_group_dot(
    signs_a: np.ndarray,
    mantissas_a: np.ndarray,
    exponent_a: int,
    mantissa_bits_a: int,
    signs_b: np.ndarray,
    mantissas_b: np.ndarray,
    exponent_b: int,
    mantissa_bits_b: int,
    chunk_bits: int = 2,
) -> FMACResult:
    """Dot product of two BFP groups evaluated chunk-by-chunk.

    The group value of element ``i`` of operand A is
    ``sign_a[i] * mantissa_a[i] * 2**(exponent_a - (mantissa_bits_a - 1))``,
    and similarly for B; the result is the exact FP dot product of those
    values, produced the way the hardware produces it: one integer dot
    product per chunk pair, scaled by the chunk exponent offsets plus the sum
    of the two shared exponents.
    """
    signs_a = np.asarray(signs_a, dtype=np.int64)
    signs_b = np.asarray(signs_b, dtype=np.int64)
    chunks_a, offsets_a = decompose_mantissas(mantissas_a, mantissa_bits_a, chunk_bits)
    chunks_b, offsets_b = decompose_mantissas(mantissas_b, mantissa_bits_b, chunk_bits)

    # Scale factors that map integer mantissas to real values.
    scale_a = exponent_a - (mantissa_bits_a - 1)
    scale_b = exponent_b - (mantissa_bits_b - 1)
    # Chunk k of an m-bit mantissa holds bits worth 2**(m - (k+1)*chunk_bits).
    base_shift_a = mantissa_bits_a - chunk_bits
    base_shift_b = mantissa_bits_b - chunk_bits

    total = 0.0
    passes = 0
    for ka in range(chunks_a.shape[0]):
        for kb in range(chunks_b.shape[0]):
            partial = int(np.dot(signs_a * chunks_a[ka], signs_b * chunks_b[kb]))
            shift = (base_shift_a + offsets_a[ka]) + (base_shift_b + offsets_b[kb])
            total += partial * (2.0 ** (scale_a + scale_b + shift))
            passes += 1
    expected_passes = passes_required(mantissa_bits_a, mantissa_bits_b, chunk_bits)
    assert passes == expected_passes
    multiplications = passes * signs_a.size
    return FMACResult(value=total, passes=passes, multiplications=multiplications)


def _chunk_pair_accumulate(mantissas_a, signs_a, mantissa_bits_a,
                           mantissas_b, signs_b, mantissa_bits_b,
                           chunk_bits, base, subscripts):
    """Per-group accumulator of the vectorized chunk-pair evaluation.

    Shared by :func:`fmac_dot_product` and :func:`bfp_matmul`: one integer
    einsum per chunk pair, each partial scaled by ``base * 2**shift`` and
    accumulated chunk-pairs-first.  Within every output element this walks
    chunk pairs in exactly the order of the scalar :func:`fmac_group_dot`
    loop, which is what keeps both callers bit-identical to it.  ``base``
    carries the per-group ``2**(e_a + e_b - (m_a-1) - (m_b-1))`` scale in
    the accumulator's shape.
    """
    chunks_a, offsets_a = decompose_mantissas(mantissas_a, mantissa_bits_a, chunk_bits)
    chunks_b, offsets_b = decompose_mantissas(mantissas_b, mantissa_bits_b, chunk_bits)
    signed_a = chunks_a * signs_a[None]
    signed_b = chunks_b * signs_b[None]
    base_shift = (mantissa_bits_a - chunk_bits) + (mantissa_bits_b - chunk_bits)
    accumulator = np.zeros(base.shape)
    for ka in range(chunks_a.shape[0]):
        for kb in range(chunks_b.shape[0]):
            partial = np.einsum(subscripts, signed_a[ka], signed_b[kb]).astype(np.float64)
            shift = base_shift + offsets_a[ka] + offsets_b[kb]
            accumulator += partial * (base * (2.0 ** shift))
    return accumulator


def fmac_dot_product(a: BFPTensor, b: BFPTensor, chunk_bits: int = 2) -> FMACResult:
    """Dot product of two BFP-quantized vectors spanning one or more groups.

    Both tensors must be 1-D with identical length and group size; the FP
    accumulation across groups mirrors the accumulator of Figure 11.

    Evaluated with the same vectorized chunk-pair einsum as
    :func:`bfp_matmul`: one integer contraction per chunk pair over all
    groups replaces the per-group Python loop.  Each group's partial sums
    accumulate over chunk pairs first and groups second -- exactly the order
    of the scalar :func:`fmac_group_dot` walk (kept as
    :func:`fmac_dot_product_reference`), so the result is bit-identical.
    """
    if a.shape != b.shape:
        raise ValueError("operands must have the same shape")
    if a.group_size != b.group_size:
        raise ValueError("operands must share a group size")
    signs_a = a.signs.reshape(-1, a.group_size).astype(np.int64)
    signs_b = b.signs.reshape(-1, b.group_size).astype(np.int64)
    mant_a = a.mantissas.reshape(-1, a.group_size)
    mant_b = b.mantissas.reshape(-1, b.group_size)
    exps_a = a.exponents.reshape(-1)
    exps_b = b.exponents.reshape(-1)

    scale_sum = exps_a + exps_b - (a.mantissa_bits - 1) - (b.mantissa_bits - 1)
    base = np.power(2.0, scale_sum)                           # (G,), exact powers of two
    accumulator = _chunk_pair_accumulate(
        mant_a, signs_a, a.mantissa_bits, mant_b, signs_b, b.mantissa_bits,
        chunk_bits, base, "gk,gk->g",
    )
    total = 0.0
    for value in accumulator:
        total += float(value)
    per_group_passes = passes_required(a.mantissa_bits, b.mantissa_bits, chunk_bits)
    passes = per_group_passes * int(exps_a.size)
    multiplications = passes * a.group_size
    return FMACResult(value=total, passes=passes, multiplications=multiplications)


def fmac_dot_product_reference(a: BFPTensor, b: BFPTensor, chunk_bits: int = 2) -> FMACResult:
    """The original per-group Python walk, kept as the golden model.

    ``tests/hardware/test_fmac.py`` asserts :func:`fmac_dot_product` matches
    this loop bit-for-bit (value, passes and multiplication counts).
    """
    if a.shape != b.shape:
        raise ValueError("operands must have the same shape")
    if a.group_size != b.group_size:
        raise ValueError("operands must share a group size")
    signs_a = a.signs.reshape(-1, a.group_size)
    signs_b = b.signs.reshape(-1, b.group_size)
    mant_a = a.mantissas.reshape(-1, a.group_size)
    mant_b = b.mantissas.reshape(-1, b.group_size)
    exps_a = a.exponents.reshape(-1)
    exps_b = b.exponents.reshape(-1)

    total = 0.0
    passes = 0
    multiplications = 0
    for group in range(exps_a.size):
        result = fmac_group_dot(
            signs_a[group], mant_a[group], int(exps_a[group]), a.mantissa_bits,
            signs_b[group], mant_b[group], int(exps_b[group]), b.mantissa_bits,
            chunk_bits=chunk_bits,
        )
        total += result.value
        passes += result.passes
        multiplications += result.multiplications
    return FMACResult(value=total, passes=passes, multiplications=multiplications)


def bfp_matmul(a: np.ndarray, b: np.ndarray, mantissa_bits_a: int = 4, mantissa_bits_b: int = 4,
               group_size: int = 16, exponent_bits: int = 8,
               chunk_bits: int = 2) -> Tuple[np.ndarray, int]:
    """Matrix product with both operands BFP-quantized, evaluated via fMACs.

    Quantizes ``a`` (shape M x K, grouped along K) and ``b`` (shape K x N,
    grouped along K) and computes ``a_q @ b_q`` one group dot product at a
    time.  Returns ``(product, total_passes)``.  Intended for verification
    and small benchmarks -- it is a functional model, not a fast kernel.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("expected 2-D operands with matching inner dimension")
    rows, inner = a.shape
    cols = b.shape[1]
    a_q = bfp_quantize_tensor(a, mantissa_bits=mantissa_bits_a, group_size=group_size,
                              exponent_bits=exponent_bits, axis=1)
    b_q = bfp_quantize_tensor(b.T, mantissa_bits=mantissa_bits_b, group_size=group_size,
                              exponent_bits=exponent_bits, axis=1)

    # Vectorized chunked evaluation: one integer einsum per chunk pair over
    # all (row, col, group) triples replaces the per-group Python loop of
    # fmac_group_dot.  The accumulation order (chunk pairs first, then groups)
    # matches the scalar reference exactly, so the result is bit-identical.
    groups_per_row = a_q.exponents.shape[1]
    scale_sum = (a_q.exponents[:, None, :] + b_q.exponents[None, :, :]
                 - (mantissa_bits_a - 1) - (mantissa_bits_b - 1))
    base = np.power(2.0, scale_sum)                          # (rows, cols, G), exact powers of two
    accumulator = _chunk_pair_accumulate(
        a_q.mantissas, a_q.signs.astype(np.int64), mantissa_bits_a,
        b_q.mantissas, b_q.signs.astype(np.int64), mantissa_bits_b,
        chunk_bits, base, "igk,jgk->ijg",
    )
    result = np.zeros((rows, cols))
    for g in range(groups_per_row):
        result += accumulator[..., g]
    total_passes = rows * cols * groups_per_row * passes_required(
        mantissa_bits_a, mantissa_bits_b, chunk_bits
    )
    return result, total_passes
