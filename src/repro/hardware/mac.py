"""Analytical cost models for multiplier-accumulator (MAC) designs (Table IV).

The paper synthesizes each MAC design with Synopsys DC (45 nm) and maps it to
a Xilinx VC707 FPGA.  Offline, we substitute a gate-level analytical model:

* fixed-point multipliers cost ``a_bits * b_bits`` units (quadratic scaling
  with bitwidth, the property Section III-B relies on),
* adders cost their bitwidth,
* barrel shifters cost ``width * log2(positions)``,
* an FP accumulate step costs an alignment shift + mantissa add +
  normalization shift at the accumulator width.

Because one fMAC performs a whole BFP group dot product (g = 16) per pass,
every scalar MAC design is instantiated 16 times ("16x" rows of Table IV) so
all rows have equal throughput.  Power, LUT and FF estimates are affine
functions of the modelled area, calibrated against the paper's reported fMAC
and FP16 endpoints; the paper's own numbers are kept in
:data:`PAPER_TABLE4` so benchmarks can print model-vs-paper side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

__all__ = [
    "MACDesign",
    "fmac_design",
    "int_mac_design",
    "fp_mac_design",
    "hfp8_mac_design",
    "bfp_group_mac_design",
    "table4_designs",
    "PAPER_TABLE4",
]

# Gate-cost primitives (arbitrary units; only ratios matter).
_FP32_ACCUMULATOR_MANTISSA = 24


def _multiplier_area(a_bits: int, b_bits: int) -> float:
    return float(a_bits * b_bits)


def _adder_area(bits: int) -> float:
    return float(bits)


def _shifter_area(width: int, positions: int) -> float:
    return float(width * max(math.log2(max(positions, 2)), 1.0))


def _fp_accumulate_area(accumulator_mantissa: int) -> float:
    """Alignment shift + add + normalization shift at the accumulator width."""
    align = _shifter_area(accumulator_mantissa, accumulator_mantissa)
    add = _adder_area(accumulator_mantissa)
    normalize = _shifter_area(accumulator_mantissa, accumulator_mantissa)
    return align + add + normalize


# Affine calibrations (anchored at the paper's fMAC and 16x FP16 rows).
_POWER_OFFSET_MW, _POWER_SLOPE = 0.542, 6.64e-4
_LUT_OFFSET, _LUT_SLOPE = 150.0, 0.2304
_FF_OFFSET, _FF_SLOPE = 81.5, 0.1134


@dataclass(frozen=True)
class MACDesign:
    """Cost summary of one MAC design at group-equivalent throughput."""

    name: str
    area_units: float
    values_per_cycle: int
    exponent_bits: int
    mantissa_bits: int

    @property
    def power_mw(self) -> float:
        return _POWER_OFFSET_MW + _POWER_SLOPE * self.area_units

    @property
    def lut(self) -> int:
        return int(round(_LUT_OFFSET + _LUT_SLOPE * self.area_units))

    @property
    def ff(self) -> int:
        return int(round(_FF_OFFSET + _FF_SLOPE * self.area_units))

    def relative_area(self, baseline: "MACDesign") -> float:
        """Area of this design relative to ``baseline`` (the paper reports vs fMAC)."""
        return self.area_units / baseline.area_units


def fmac_design(group_size: int = 16, chunk_bits: int = 2, exponent_bits: int = 8) -> MACDesign:
    """The FAST MAC: one BFP group dot product in mantissa chunks (Figure 11).

    Components: ``g`` small chunk multipliers (sign handled separately), an
    adder tree over the partial products, one shared-exponent adder, an FP
    generator and an FP32 accumulator amortized over the whole group.
    """
    multiplier_bits = chunk_bits + 1  # chunk magnitude + sign handling
    multipliers = group_size * _multiplier_area(multiplier_bits, multiplier_bits)
    # Adder tree: g-1 adders whose width grows from the product width up by log2(g).
    product_bits = 2 * multiplier_bits
    tree = sum(
        (group_size >> (level + 1)) * _adder_area(product_bits + level + 1)
        for level in range(int(math.log2(group_size)))
    )
    exponent_adder = _adder_area(exponent_bits)
    fp_generator = _shifter_area(_FP32_ACCUMULATOR_MANTISSA, _FP32_ACCUMULATOR_MANTISSA)
    accumulator = _fp_accumulate_area(_FP32_ACCUMULATOR_MANTISSA) - _shifter_area(
        _FP32_ACCUMULATOR_MANTISSA, _FP32_ACCUMULATOR_MANTISSA
    )  # normalization already counted in the FP generator
    area = multipliers + tree + exponent_adder + fp_generator + accumulator
    return MACDesign("fmac", area, values_per_cycle=group_size,
                     exponent_bits=exponent_bits, mantissa_bits=chunk_bits)


def bfp_group_mac_design(mantissa_bits: int, exponent_bits: int, group_size: int = 16,
                         name: str = None) -> MACDesign:
    """A BFP group MAC with full-width mantissa multipliers (e.g. MSFP-12)."""
    multiplier_bits = mantissa_bits + 1
    multipliers = group_size * _multiplier_area(multiplier_bits, multiplier_bits)
    product_bits = 2 * multiplier_bits
    tree = sum(
        (group_size >> (level + 1)) * _adder_area(product_bits + level + 1)
        for level in range(int(math.log2(group_size)))
    )
    exponent_adder = _adder_area(exponent_bits)
    fp_generator = _shifter_area(_FP32_ACCUMULATOR_MANTISSA, _FP32_ACCUMULATOR_MANTISSA)
    accumulator = _adder_area(_FP32_ACCUMULATOR_MANTISSA) + _shifter_area(
        _FP32_ACCUMULATOR_MANTISSA, _FP32_ACCUMULATOR_MANTISSA
    )
    area = multipliers + tree + exponent_adder + fp_generator + accumulator
    label = name if name is not None else f"bfp_e{exponent_bits}_m{mantissa_bits}"
    return MACDesign(label, area, values_per_cycle=group_size,
                     exponent_bits=exponent_bits, mantissa_bits=mantissa_bits)


def int_mac_design(total_bits: int, count: int = 16, name: str = None) -> MACDesign:
    """``count`` parallel fixed point MACs (multiplier + INT32 accumulator each)."""
    magnitude = total_bits - 1
    per_element = _multiplier_area(magnitude, magnitude) + _adder_area(32)
    label = name if name is not None else f"int{total_bits}"
    return MACDesign(label, per_element * count, values_per_cycle=count,
                     exponent_bits=0, mantissa_bits=total_bits - 1)


def fp_mac_design(exponent_bits: int, mantissa_bits: int, count: int = 16,
                  accumulator_mantissa: int = _FP32_ACCUMULATOR_MANTISSA,
                  name: str = None) -> MACDesign:
    """``count`` parallel floating point MACs with FP accumulation."""
    per_element = (
        _multiplier_area(mantissa_bits + 1, mantissa_bits + 1)
        + _adder_area(exponent_bits)
        + _fp_accumulate_area(accumulator_mantissa)
    )
    label = name if name is not None else f"fp_e{exponent_bits}_m{mantissa_bits}"
    return MACDesign(label, per_element * count, values_per_cycle=count,
                     exponent_bits=exponent_bits, mantissa_bits=mantissa_bits)


def hfp8_mac_design(count: int = 16) -> MACDesign:
    """The HFP8-comparable MAC: 4-bit exponent, 2-bit mantissa, FP16 accumulate.

    The paper implements a MAC strictly cheaper than either HFP8 variant
    (1-4-3 forward / 1-5-2 backward); accumulating into FP16 keeps the
    alignment and normalization hardware narrow.
    """
    design = fp_mac_design(4, 2, count=count, accumulator_mantissa=11, name="hfp8")
    return design


#: The paper's reported Table IV (area normalized to fMAC; power in mW; FPGA LUT/FF).
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "fmac": {"area": 1.0, "power_mw": 0.885, "lut": 269, "ff": 140},
    "int8": {"area": 3.8, "power_mw": 2.241, "lut": 498, "ff": 195},
    "hfp8": {"area": 4.1, "power_mw": 2.406, "lut": 527, "ff": 220},
    "int12": {"area": 5.6, "power_mw": 2.920, "lut": 730, "ff": 273},
    "bfloat16": {"area": 9.6, "power_mw": 3.869, "lut": 1305, "ff": 684},
    "fp16": {"area": 10.6, "power_mw": 4.474, "lut": 1514, "ff": 753},
}


def table4_designs() -> List[MACDesign]:
    """The six MAC designs of Table IV, in the paper's row order."""
    return [
        fmac_design(),
        int_mac_design(8, name="int8"),
        hfp8_mac_design(),
        int_mac_design(12, name="int12"),
        fp_mac_design(8, 7, name="bfloat16"),
        fp_mac_design(5, 10, name="fp16"),
    ]
