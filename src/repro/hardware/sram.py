"""CACTI-like SRAM model for the FAST memory subsystem.

The paper sizes the gradient, weight and data SRAMs at 128 banks of 16 kB
each and uses CACTI for their area/power.  Offline, this module provides a
simple analytical substitute: area scales linearly with capacity (plus a
per-bank periphery overhead), leakage power scales with capacity, dynamic
power scales with access bandwidth.  The constants are calibrated so the
three-SRAM subsystem of the paper's configuration lands on the Table III
numbers (40.3 % of system area, 3.37 W).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SRAMBank", "SRAMSubsystem"]

# Calibration constants (45 nm-ish, arbitrary-but-consistent units for area).
_AREA_PER_KB = 1133.0         # area units per kB (cross-calibrated to the MAC gate units)
_AREA_PER_BANK = 220.0        # periphery overhead per bank
_LEAKAGE_MW_PER_KB = 0.50     # static power per kB
_DYNAMIC_MW_PER_GBPS = 1.50   # dynamic power per GB/s of sustained access


@dataclass(frozen=True)
class SRAMBank:
    """One SRAM bank of ``capacity_kb`` kilobytes."""

    capacity_kb: float = 16.0

    @property
    def area_units(self) -> float:
        return _AREA_PER_KB * self.capacity_kb + _AREA_PER_BANK

    @property
    def leakage_mw(self) -> float:
        return _LEAKAGE_MW_PER_KB * self.capacity_kb

    def dynamic_mw(self, bandwidth_gbps: float) -> float:
        """Dynamic power at a sustained access bandwidth (GB/s)."""
        return _DYNAMIC_MW_PER_GBPS * bandwidth_gbps


@dataclass(frozen=True)
class SRAMSubsystem:
    """A named group of identical banks (e.g. the weight SRAM: 128 x 16 kB)."""

    name: str
    num_banks: int = 128
    bank: SRAMBank = SRAMBank()

    @property
    def capacity_kb(self) -> float:
        return self.num_banks * self.bank.capacity_kb

    @property
    def area_units(self) -> float:
        return self.num_banks * self.bank.area_units

    def power_w(self, bandwidth_gbps: float = 64.0) -> float:
        """Total power (W) at a given sustained bandwidth spread over the banks."""
        leakage = self.num_banks * self.bank.leakage_mw
        dynamic = self.bank.dynamic_mw(bandwidth_gbps)
        return (leakage + dynamic) / 1000.0
