"""Multi-chip scaling model (the paper's stated future work, Section VIII).

The paper closes by asking how FAST would scale when training is distributed
across a multi-chip system.  This module provides a first-order data-parallel
scaling model on top of the single-chip performance model:

* each of ``num_chips`` chips processes ``batch / num_chips`` of every
  training iteration (compute time scales with its share of the streaming
  dimension),
* after the backward pass the weight gradients are all-reduced over an
  inter-chip interconnect (ring all-reduce: ``2 * (n - 1) / n`` traversals of
  the gradient volume at the link bandwidth, plus per-step latency),
* the gradient volume depends on the number format used for the exchange --
  exchanging BFP-compressed gradients (3.2 or 6.2 bits/value, Section V-D)
  instead of FP32 reduces the communication term by 5-10x, which is exactly
  the kind of benefit a multi-chip FAST deployment would target.

The model reports per-iteration time, parallel efficiency and the point where
communication starts to dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.memory_layout import bits_per_value
from .performance import IterationCost, fast_adaptive_iteration_cost, iteration_cost
from .system import CLOCK_HZ, SystemConfig, iso_area_systems
from .workloads import Workload

__all__ = ["Interconnect", "MultiChipResult", "gradient_traffic_bits", "multichip_iteration", "scaling_sweep"]


@dataclass(frozen=True)
class Interconnect:
    """A chip-to-chip link (defaults loosely modelled on a PCIe/NVLink-class link)."""

    bandwidth_gbps: float = 100.0      # usable gigabits per second per link
    latency_us: float = 2.0            # per all-reduce step latency

    def transfer_seconds(self, bits: float) -> float:
        return bits / (self.bandwidth_gbps * 1e9)


@dataclass
class MultiChipResult:
    """Per-iteration timing of a data-parallel multi-chip configuration."""

    num_chips: int
    compute_seconds: float
    communication_seconds: float
    single_chip_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.communication_seconds

    @property
    def speedup(self) -> float:
        return self.single_chip_seconds / self.total_seconds

    @property
    def efficiency(self) -> float:
        return self.speedup / self.num_chips

    @property
    def communication_fraction(self) -> float:
        return self.communication_seconds / self.total_seconds if self.total_seconds else 0.0


def gradient_traffic_bits(workload: Workload, exchange_format: str = "fp32",
                          mantissa_bits: int = 4, group_size: int = 16,
                          exponent_bits: int = 3) -> float:
    """Bits of weight-gradient traffic one chip contributes per iteration.

    The weight-gradient volume equals the number of weight parameters of the
    workload's layers (``m * k`` per GEMM).  ``exchange_format`` is either
    ``"fp32"`` (32 bits/value) or ``"bfp"`` (the chunked BFP storage format of
    Section V-D at the given mantissa width).
    """
    num_values = sum(layer.m * layer.k for layer in workload.layers)
    if exchange_format == "fp32":
        return 32.0 * num_values
    if exchange_format == "bfp":
        return bits_per_value(exponent_bits, group_size, mantissa_bits) * num_values
    raise ValueError(f"unknown exchange format {exchange_format!r}")


def _scaled_compute(workload: Workload, system: SystemConfig, num_chips: int,
                    fast_adaptive: bool, clock_hz: float) -> IterationCost:
    scaled_layers = [
        type(layer)(layer.name, layer.m, layer.k, max(layer.n // num_chips, 1))
        for layer in workload.layers
    ]
    scaled = Workload(workload.name, scaled_layers, workload.batch_size,
                      workload.target_metric, workload.target_name)
    if fast_adaptive:
        return fast_adaptive_iteration_cost(scaled, system, clock_hz=clock_hz)
    return iteration_cost(scaled, system, clock_hz=clock_hz)


def multichip_iteration(workload: Workload, num_chips: int,
                        system: Optional[SystemConfig] = None,
                        interconnect: Optional[Interconnect] = None,
                        exchange_format: str = "bfp",
                        fast_adaptive: bool = True,
                        clock_hz: float = CLOCK_HZ) -> MultiChipResult:
    """Per-iteration time of a data-parallel deployment on ``num_chips`` FAST chips."""
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    if system is None:
        system = iso_area_systems()["fast_adaptive"]
    interconnect = interconnect if interconnect is not None else Interconnect()

    single = _scaled_compute(workload, system, 1, fast_adaptive, clock_hz)
    compute = _scaled_compute(workload, system, num_chips, fast_adaptive, clock_hz)

    if num_chips == 1:
        communication = 0.0
    else:
        traffic = gradient_traffic_bits(workload, exchange_format)
        ring_factor = 2.0 * (num_chips - 1) / num_chips
        communication = interconnect.transfer_seconds(traffic * ring_factor)
        communication += 2.0 * (num_chips - 1) * interconnect.latency_us * 1e-6

    return MultiChipResult(
        num_chips=num_chips,
        compute_seconds=compute.seconds,
        communication_seconds=communication,
        single_chip_seconds=single.seconds,
    )


def scaling_sweep(workload: Workload, chip_counts=(1, 2, 4, 8, 16),
                  exchange_format: str = "bfp", **kwargs) -> Dict[int, MultiChipResult]:
    """Evaluate :func:`multichip_iteration` over a range of chip counts."""
    return {count: multichip_iteration(workload, count, exchange_format=exchange_format, **kwargs)
            for count in chip_counts}
