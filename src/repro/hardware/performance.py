"""Training-iteration time and energy model (Figures 19 and 20).

For every training system (FAST plus the iso-area baselines of
:func:`repro.hardware.system.iso_area_systems`) and every workload of
:mod:`repro.hardware.workloads`, this module estimates:

* cycles per training iteration -- each layer contributes its forward GEMM
  and the two backward GEMMs of Figure 3, executed on the system's systolic
  array via :func:`repro.hardware.systolic.tiled_matmul_cycles`.  BFP systems
  additionally multiply the reduction time by the fMAC pass count implied by
  the operand mantissa widths (Figure 13):

  - forward ``O = W A``      -> ``chunks(m_W) * chunks(m_A)`` passes,
  - backward ``∇A = W^T ∇O`` -> ``chunks(m_W) * chunks(m_G)`` passes,
  - backward ``∇W = ∇O A^T`` -> ``chunks(m_A) * chunks(m_G)`` passes,

* seconds per iteration at the 500 MHz clock, and
* energy per iteration (power x time).

For FAST-Adaptive the per-layer precision changes over training; the model
either consumes a measured precision trajectory (from
:class:`repro.training.schedules.FASTSchedule`) or an analytical one derived
from the threshold ``ε(l, i)`` of Equation 1 and a typical relative
improvement value (Figure 17 shows the resulting low-to-high progression).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.chunks import num_chunks
from ..core.precision_policy import fast_threshold
from .system import CLOCK_HZ, SystemConfig, iso_area_systems
from .systolic import tiled_matmul_cycles
from .workloads import GemmShape, Workload

__all__ = [
    "IterationCost",
    "product_passes",
    "layer_cycles",
    "iteration_cost",
    "modelled_fast_precisions",
    "fast_adaptive_iteration_cost",
    "format_iteration_costs",
    "FORMAT_PRECISIONS",
]

PrecisionTriple = Tuple[int, int, int]

#: Fixed (W, A, G) mantissa widths of the BFP formats that run on the FAST
#: hardware.  Scalar formats are not listed: they run on their own iso-area
#: system at one pass per MAC.
FORMAT_PRECISIONS: Dict[str, PrecisionTriple] = {
    "low_bfp": (2, 2, 2),
    "mid_bfp": (3, 3, 3),
    "high_bfp": (4, 4, 4),
}


@dataclass
class IterationCost:
    """Cost of one training iteration on one system."""

    name: str
    cycles: float
    seconds: float
    energy_joules: float

    @property
    def seconds_per_iteration(self) -> float:
        return self.seconds

    @property
    def power_watts(self) -> float:
        return self.energy_joules / self.seconds if self.seconds else 0.0


def product_passes(weight_bits: int, activation_bits: int, gradient_bits: int,
                   chunk_bits: int = 2) -> Dict[str, int]:
    """fMAC pass counts of the three training products for a (W, A, G) setting."""
    chunks_w = num_chunks(weight_bits, chunk_bits)
    chunks_a = num_chunks(activation_bits, chunk_bits)
    chunks_g = num_chunks(gradient_bits, chunk_bits)
    return {
        "forward": chunks_w * chunks_a,
        "grad_activation": chunks_w * chunks_g,
        "grad_weight": chunks_a * chunks_g,
    }


def layer_cycles(layer: GemmShape, system: SystemConfig,
                 passes: Optional[Dict[str, int]] = None) -> float:
    """Cycles for the three training products of one layer on one system.

    All three products reuse the weight-stationary tiling of the forward pass
    (Figure 12): the stored weight tile covers the layer's ``(m, k)`` weight
    dimensions and the batch/spatial dimension ``n`` streams through the
    array for each product, so only the fMAC pass count differs between the
    forward pass and the two backward products.
    """
    if passes is None:
        passes = {"forward": 1, "grad_activation": 1, "grad_weight": 1}
    total = 0.0
    for product_passes_count in (passes["forward"], passes["grad_activation"], passes["grad_weight"]):
        total += tiled_matmul_cycles(
            layer.m, layer.k, layer.n,
            array_rows=system.array_rows,
            array_cols=system.array_cols,
            k_per_cycle=system.values_per_mac,
            passes=product_passes_count,
        )
    return total


def _normalize_precisions(workload: Workload,
                          precisions: Union[None, PrecisionTriple, Sequence[PrecisionTriple]]
                          ) -> Optional[List[PrecisionTriple]]:
    if precisions is None:
        return None
    if isinstance(precisions, tuple) and len(precisions) == 3 and all(
            isinstance(value, (int, np.integer)) for value in precisions):
        return [precisions] * workload.num_layers
    precisions = list(precisions)
    if len(precisions) != workload.num_layers:
        # Stretch or shrink a per-layer list onto this workload's layer count.
        indices = np.linspace(0, len(precisions) - 1, workload.num_layers).round().astype(int)
        precisions = [precisions[i] for i in indices]
    return precisions


def iteration_cost(workload: Workload, system: SystemConfig,
                   precisions: Union[None, PrecisionTriple, Sequence[PrecisionTriple]] = None,
                   clock_hz: float = CLOCK_HZ) -> IterationCost:
    """Cycles / time / energy of one training iteration.

    ``precisions`` is ``None`` for scalar (one-pass) systems, a single
    ``(W, A, G)`` triple applied to every layer, or a per-layer list of
    triples (FAST-Adaptive).
    """
    per_layer = _normalize_precisions(workload, precisions)
    total_cycles = 0.0
    for index, layer in enumerate(workload.layers):
        if per_layer is None or not system.bfp_chunked:
            passes = None
        else:
            weight_bits, activation_bits, gradient_bits = per_layer[index]
            passes = product_passes(weight_bits, activation_bits, gradient_bits)
        total_cycles += layer_cycles(layer, system, passes)
    seconds = total_cycles / clock_hz
    energy = seconds * system.power_w
    return IterationCost(system.name, total_cycles, seconds, energy)


def modelled_fast_precisions(num_layers: int, progress: float, alpha: float = 0.6,
                             beta: float = 0.3, typical_improvement: float = 0.26,
                             low_bits: int = 2, high_bits: int = 4) -> List[PrecisionTriple]:
    """Analytical FAST precision assignment at a given training progress.

    A tensor is promoted to the high precision when the typical relative
    improvement exceeds the threshold ``ε(l, i)``.  Weights, activations and
    gradients see slightly different improvement statistics in practice
    (gradients have the widest exponent spread, Figure 6), which is modelled
    with small per-kind offsets so the (W, A, G) settings differentiate the
    way Figure 17 shows.
    """
    offsets = {"weight": 0.0, "activation": -0.05, "gradient": 0.05}
    settings: List[PrecisionTriple] = []
    iteration = progress
    for layer in range(num_layers):
        threshold = fast_threshold(layer, iteration, max(num_layers, 1), 1.0, alpha, beta)
        bits = {}
        for kind, offset in offsets.items():
            improvement = typical_improvement + offset
            bits[kind] = low_bits if improvement < threshold else high_bits
        settings.append((bits["weight"], bits["activation"], bits["gradient"]))
    return settings


def fast_adaptive_iteration_cost(workload: Workload, system: SystemConfig,
                                 precision_trajectory: Optional[Iterable[Sequence[PrecisionTriple]]] = None,
                                 samples: int = 20, alpha: float = 0.6, beta: float = 0.3,
                                 typical_improvement: float = 0.26,
                                 clock_hz: float = CLOCK_HZ) -> IterationCost:
    """Average per-iteration cost of FAST-Adaptive over the whole training run.

    ``precision_trajectory`` may be a measured sequence of per-layer (W, A, G)
    settings (one entry per logged iteration/epoch); when omitted the
    analytical model of :func:`modelled_fast_precisions` is sampled at
    ``samples`` evenly spaced points of training progress.
    """
    if precision_trajectory is None:
        progress_points = np.linspace(0.0, 1.0, samples)
        trajectory = [
            modelled_fast_precisions(workload.num_layers, float(progress), alpha, beta,
                                     typical_improvement)
            for progress in progress_points
        ]
    else:
        trajectory = [list(entry) for entry in precision_trajectory]
        if not trajectory:
            raise ValueError("precision_trajectory is empty")
    costs = [iteration_cost(workload, system, precisions=entry, clock_hz=clock_hz)
             for entry in trajectory]
    cycles = float(np.mean([cost.cycles for cost in costs]))
    seconds = cycles / clock_hz
    return IterationCost("fast_adaptive", cycles, seconds, seconds * system.power_w)


def format_iteration_costs(workload: Workload,
                           systems: Optional[Dict[str, SystemConfig]] = None,
                           fast_trajectory: Optional[Iterable[Sequence[PrecisionTriple]]] = None,
                           clock_hz: float = CLOCK_HZ) -> Dict[str, IterationCost]:
    """Per-iteration cost of every evaluated system for one workload.

    Scalar formats run one pass per MAC on their own iso-area array; the BFP
    formats run on the FAST array with their fixed pass counts; FAST-Adaptive
    averages over its precision trajectory.
    """
    systems = systems if systems is not None else iso_area_systems()
    costs: Dict[str, IterationCost] = {}
    for name, system in systems.items():
        if name == "fast_adaptive":
            costs[name] = fast_adaptive_iteration_cost(workload, system,
                                                       precision_trajectory=fast_trajectory,
                                                       clock_hz=clock_hz)
        elif name in FORMAT_PRECISIONS:
            costs[name] = iteration_cost(workload, system, FORMAT_PRECISIONS[name], clock_hz)
        else:
            costs[name] = iteration_cost(workload, system, None, clock_hz)
    return costs
