"""System-level model of the FAST accelerator and its iso-area baselines.

The FAST system (Figure 10) contains:

* a 256 x 64 systolic array of fMAC cells (each cell performs a 16-element
  BFP group dot product per pass),
* two BFP converters,
* an accumulator buffering partial tile results,
* systolic-array data generators (input skewing registers),
* a memory subsystem of three SRAMs (weights, data, gradients), each with
  128 banks of 16 kB,

and runs at 500 MHz.  Table III reports the area and power breakdown of that
configuration; Section VII-B lists the systolic array dimensions of the
baseline training systems that fit in the *same total area* when built from
other MAC designs (HFP8 245x245, MSFP-12 230x230, INT-12 210x210, bfloat16
180x180, FP16 150x150).  Baselines not listed by the paper (FP32, INT8) are
derived from the MAC area model at iso-area.

This module provides both the component-level breakdown (for Table III) and
the iso-area baseline configurations (for Figures 19 and 20).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .mac import MACDesign, bfp_group_mac_design, fmac_design, fp_mac_design, int_mac_design
from .sram import SRAMSubsystem

__all__ = [
    "SystemComponent",
    "FASTSystem",
    "SystemConfig",
    "iso_area_systems",
    "PAPER_TABLE3",
    "PAPER_ARRAY_DIMS",
    "CLOCK_HZ",
]

#: Clock frequency of every evaluated system (Section VII).
CLOCK_HZ = 500e6

#: The paper's Table III (area fraction, power in watts).
PAPER_TABLE3: Dict[str, Dict[str, float]] = {
    "systolic_array": {"area_fraction": 0.4779, "power_w": 15.61},
    "bfp_converter": {"area_fraction": 0.0456, "power_w": 1.77},
    "accumulator": {"area_fraction": 0.0663, "power_w": 2.19},
    "data_generator": {"area_fraction": 0.0068, "power_w": 0.69},
    "memory_subsystem": {"area_fraction": 0.4034, "power_w": 3.37},
}

#: Iso-area systolic array dimensions reported in Section VII-B.  The FP32
#: entry is not reported by the paper; it is derived from the FP16 entry
#: using the ~1.5x FP32/FP16 fused multiply-add area ratio implied by the
#: paper's relative training times (Figure 20).
PAPER_ARRAY_DIMS: Dict[str, tuple] = {
    "fast": (256, 64),
    "hfp8": (245, 245),
    "msfp12": (230, 230),
    "int12": (210, 210),
    "bfloat16": (180, 180),
    "fp16": (150, 150),
    "nvidia_mp": (150, 150),
    "fp32": (123, 123),
}

# Power densities (W per area unit) calibrated per component class so the
# default FAST configuration reproduces the Table III power column.
_ARRAY_POWER_DENSITY = 15.61 / (256 * 64 * 512.0)
_CONVERTER_POWER_DENSITY = 1.77 / 1.29e6
_ACCUMULATOR_POWER_DENSITY = 2.19 / 6.55e5
_DATAGEN_POWER_DENSITY = 0.69 / 6.15e4


@dataclass
class SystemComponent:
    """One block of the accelerator with its modelled area and power."""

    name: str
    area_units: float
    power_w: float


def _converter_area(lanes: int, group_size: int = 16, exponent_bits: int = 8,
                    mantissa_width: int = 24) -> float:
    """Area of a BFP converter (Figure 14) serving ``lanes`` output lanes."""
    comparator_tree = (group_size - 1) * exponent_bits
    subtractors = group_size * exponent_bits
    shifters = group_size * mantissa_width * max(math.log2(mantissa_width), 1)
    noise_and_round = group_size * (8 + exponent_bits)
    improvement_unit = 2 * group_size * 8
    per_lane = comparator_tree + subtractors + shifters + noise_and_round + improvement_unit
    return per_lane * lanes


def _accumulator_area(rows: int, cols: int, word_bits: int = 32) -> float:
    """Area of the FP partial-sum accumulator buffering one output tile."""
    per_entry = 24 + 0.5 * word_bits  # FP adder slice + storage
    return rows * cols * per_entry


def _data_generator_area(rows: int, cols: int, word_bits: int = 32) -> float:
    """Area of the skewing registers feeding the array edges."""
    return (rows + cols) * word_bits * 3.0


class FASTSystem:
    """The FAST accelerator configuration with its area/power breakdown."""

    def __init__(self, array_rows: int = 256, array_cols: int = 64,
                 mac: Optional[MACDesign] = None, sram_banks: int = 128,
                 sram_bank_kb: float = 16.0, clock_hz: float = CLOCK_HZ):
        self.array_rows = array_rows
        self.array_cols = array_cols
        self.mac = mac if mac is not None else fmac_design()
        self.clock_hz = clock_hz
        self.srams = [
            SRAMSubsystem("weight_sram", sram_banks, bank=_bank(sram_bank_kb)),
            SRAMSubsystem("data_sram", sram_banks, bank=_bank(sram_bank_kb)),
            SRAMSubsystem("gradient_sram", sram_banks, bank=_bank(sram_bank_kb)),
        ]

    # ------------------------------------------------------------------ #
    @property
    def num_macs(self) -> int:
        return self.array_rows * self.array_cols

    def components(self) -> List[SystemComponent]:
        """The five Table III components with modelled area and power."""
        array_area = self.num_macs * self.mac.area_units
        converter_area = 2 * _converter_area(self.array_rows)
        accumulator_area = _accumulator_area(self.array_rows, self.array_cols)
        datagen_area = 2 * _data_generator_area(self.array_rows, self.array_cols)
        memory_area = sum(sram.area_units for sram in self.srams)
        memory_power = sum(sram.power_w() for sram in self.srams)
        return [
            SystemComponent("systolic_array", array_area, array_area * _ARRAY_POWER_DENSITY),
            SystemComponent("bfp_converter", converter_area, converter_area * _CONVERTER_POWER_DENSITY),
            SystemComponent("accumulator", accumulator_area, accumulator_area * _ACCUMULATOR_POWER_DENSITY),
            SystemComponent("data_generator", datagen_area, datagen_area * _DATAGEN_POWER_DENSITY),
            SystemComponent("memory_subsystem", memory_area, memory_power),
        ]

    def total_area(self) -> float:
        return sum(component.area_units for component in self.components())

    def total_power_w(self) -> float:
        return sum(component.power_w for component in self.components())

    def area_breakdown(self) -> Dict[str, float]:
        """name -> fraction of total area (the Table III area column)."""
        components = self.components()
        total = sum(component.area_units for component in components)
        return {component.name: component.area_units / total for component in components}

    def power_breakdown(self) -> Dict[str, float]:
        """name -> power in watts (the Table III power column)."""
        return {component.name: component.power_w for component in self.components()}


def _bank(capacity_kb: float):
    from .sram import SRAMBank

    return SRAMBank(capacity_kb=capacity_kb)


@dataclass
class SystemConfig:
    """A training system built from one MAC design at iso-area with FAST.

    ``values_per_mac`` is the number of reduction-dimension elements one MAC
    consumes per cycle per pass (16 for BFP group MACs, 1 for scalar MACs);
    ``bfp_chunked`` marks systems that execute variable-precision BFP by
    running multiple fMAC passes.
    """

    name: str
    array_rows: int
    array_cols: int
    values_per_mac: int
    power_w: float
    bfp_chunked: bool = False
    mac: Optional[MACDesign] = field(default=None, repr=False)

    @property
    def num_macs(self) -> int:
        return self.array_rows * self.array_cols

    def peak_macs_per_cycle(self, passes: int = 1) -> float:
        """Peak multiply-accumulates per cycle at a given pass count."""
        return self.num_macs * self.values_per_mac / max(passes, 1)


def _derived_dims(reference_dims: tuple, reference_mac: MACDesign, mac: MACDesign) -> tuple:
    """Scale a square baseline array to iso-area using the MAC area model."""
    reference_area = reference_dims[0] * reference_dims[1] * reference_mac.area_units
    side = int(math.sqrt(reference_area / mac.area_units))
    return (side, side)


def iso_area_systems(total_power_w: Optional[float] = None) -> Dict[str, SystemConfig]:
    """All evaluated training systems at the same total area (Section VII-B).

    Array dimensions come from the paper where reported and from the MAC area
    model otherwise (FP32, INT8).  LowBFP / MidBFP / HighBFP run on the FAST
    hardware itself (they are fixed-precision uses of the same fMAC array),
    so they share its configuration.  At iso-area (same technology, same
    clock) total power is approximately equal across systems, so all systems
    default to the FAST system's total power; pass ``total_power_w`` to
    override.
    """
    fast_system = FASTSystem()
    power = total_power_w if total_power_w is not None else fast_system.total_power_w()

    fp16_mac = fp_mac_design(5, 10, name="fp16")
    fp32_mac = fp_mac_design(8, 23, name="fp32")
    int8_mac = int_mac_design(8, name="int8")
    int12_mac = int_mac_design(12, name="int12")

    fp32_dims = PAPER_ARRAY_DIMS["fp32"]
    int8_dims = _derived_dims(PAPER_ARRAY_DIMS["int12"], int12_mac, int8_mac)

    configs = {
        "fast_adaptive": SystemConfig("fast_adaptive", 256, 64, 16, power, bfp_chunked=True,
                                      mac=fmac_design()),
        "low_bfp": SystemConfig("low_bfp", 256, 64, 16, power, bfp_chunked=True, mac=fmac_design()),
        "mid_bfp": SystemConfig("mid_bfp", 256, 64, 16, power, bfp_chunked=True, mac=fmac_design()),
        "high_bfp": SystemConfig("high_bfp", 256, 64, 16, power, bfp_chunked=True, mac=fmac_design()),
        "hfp8": SystemConfig("hfp8", *PAPER_ARRAY_DIMS["hfp8"], 1, power),
        "msfp12": SystemConfig("msfp12", *PAPER_ARRAY_DIMS["msfp12"], 1, power,
                               mac=bfp_group_mac_design(3, 8, name="msfp12")),
        "int12": SystemConfig("int12", *PAPER_ARRAY_DIMS["int12"], 1, power, mac=int12_mac),
        "int8": SystemConfig("int8", *int8_dims, 1, power, mac=int8_mac),
        "bfloat16": SystemConfig("bfloat16", *PAPER_ARRAY_DIMS["bfloat16"], 1, power,
                                 mac=fp_mac_design(8, 7, name="bfloat16")),
        "nvidia_mp": SystemConfig("nvidia_mp", *PAPER_ARRAY_DIMS["nvidia_mp"], 1, power, mac=fp16_mac),
        "fp16": SystemConfig("fp16", *PAPER_ARRAY_DIMS["fp16"], 1, power, mac=fp16_mac),
        "fp32": SystemConfig("fp32", *fp32_dims, 1, power, mac=fp32_mac),
    }
    return configs
