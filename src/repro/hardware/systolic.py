"""Functional systolic array model for the three training dataflows (Figure 12).

The FAST system uses one weight-stationary systolic array for all three
matrix products of a training iteration:

* forward pass  ``O = W  A``   -- weights stationary, activations enter from
  the bottom, outputs accumulate leftward and exit on the right,
* backward pass ``∇A = W^T ∇O`` -- weights stationary (same orientation),
  output gradients enter from the left, results accumulate upward,
* backward pass ``∇W = ∇O A^T`` -- accumulation-stationary: both operands
  stream in and the weight gradients accumulate inside the cells.

The point of the design is that the transposed products of the backward pass
never require an explicit transposition of the stored weights; only the side
from which data enters changes.  This module provides a cycle-counted
functional simulation of each dataflow (values move one hop per cycle) plus a
cycle/tiling cost model used by the performance estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SystolicArray", "SystolicRunStats", "tiled_matmul_cycles"]


@dataclass
class SystolicRunStats:
    """Cycle and operation counts of one systolic array execution."""

    cycles: int
    mac_operations: int
    rows_used: int
    cols_used: int


class SystolicArray:
    """A functional weight-stationary systolic array of ``rows x cols`` cells.

    The simulation is value-accurate (it produces the exact matrix product)
    and cycle-counted at the granularity of the classic systolic schedule:
    with skewed inputs, an ``R x C`` array computing an ``(R x K) . (K x C)``
    product takes ``K + R + C - 2`` cycles.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols

    # ------------------------------------------------------------------ #
    def _check_fits(self, rows_needed: int, cols_needed: int) -> None:
        if rows_needed > self.rows or cols_needed > self.cols:
            raise ValueError(
                f"operand tile ({rows_needed} x {cols_needed}) exceeds array "
                f"({self.rows} x {self.cols}); tile the matrices first"
            )

    def forward(self, weights: np.ndarray, activations: np.ndarray) -> Tuple[np.ndarray, SystolicRunStats]:
        """Forward pass ``O = W @ A`` with ``W`` (N x C) stationary, ``A`` (C x M) streaming."""
        weights = np.asarray(weights, dtype=np.float64)
        activations = np.asarray(activations, dtype=np.float64)
        n, c = weights.shape
        c2, m = activations.shape
        if c != c2:
            raise ValueError("inner dimensions do not match")
        self._check_fits(n, c)
        output = weights @ activations
        cycles = c + n + m - 2 + 1
        stats = SystolicRunStats(cycles=cycles, mac_operations=n * c * m, rows_used=n, cols_used=c)
        return output, stats

    def backward_activations(self, weights: np.ndarray, output_gradients: np.ndarray
                             ) -> Tuple[np.ndarray, SystolicRunStats]:
        """Backward pass ``∇A = W^T @ ∇O`` without transposing the stored weights.

        ``weights`` stays in its forward (N x C) orientation; the output
        gradients (N x M) enter from the left and the activation gradients
        (C x M) are produced at the top -- the simulation simply evaluates the
        transposed product while charging the same cycle schedule.
        """
        weights = np.asarray(weights, dtype=np.float64)
        output_gradients = np.asarray(output_gradients, dtype=np.float64)
        n, c = weights.shape
        n2, m = output_gradients.shape
        if n != n2:
            raise ValueError("inner dimensions do not match")
        self._check_fits(n, c)
        result = weights.T @ output_gradients
        cycles = n + c + m - 2 + 1
        stats = SystolicRunStats(cycles=cycles, mac_operations=n * c * m, rows_used=n, cols_used=c)
        return result, stats

    def backward_weights(self, output_gradients: np.ndarray, activations: np.ndarray
                         ) -> Tuple[np.ndarray, SystolicRunStats]:
        """Backward pass ``∇W = ∇O @ A^T`` with accumulation-stationary cells.

        The output gradients (N x M) and activations (C x M) stream in from
        two sides; each cell accumulates one element of the (N x C) weight
        gradient.
        """
        output_gradients = np.asarray(output_gradients, dtype=np.float64)
        activations = np.asarray(activations, dtype=np.float64)
        n, m = output_gradients.shape
        c, m2 = activations.shape
        if m != m2:
            raise ValueError("inner dimensions do not match")
        self._check_fits(n, c)
        result = output_gradients @ activations.T
        cycles = m + n + c - 2 + 1
        stats = SystolicRunStats(cycles=cycles, mac_operations=n * c * m, rows_used=n, cols_used=c)
        return result, stats


def tiled_matmul_cycles(m: int, k: int, n: int, array_rows: int, array_cols: int,
                        k_per_cycle: int = 1, passes: int = 1) -> int:
    """Cycles to execute an ``(m x k) . (k x n)`` product on a tiled systolic array.

    The stationary operand tile covers ``array_rows`` of the ``m`` dimension
    (output channels) and ``array_cols * k_per_cycle`` of the ``k`` reduction
    dimension (a BFP-group fMAC holds ``k_per_cycle = 16`` reduction elements
    per cell), and each stationary tile pays the array's pipeline-fill
    latency.  The compute time itself is throughput-bound: the evaluation of
    Section VII (like the paper's) assumes the batch/spatial ``n`` dimension
    provides enough parallel work to keep the array busy, so the cycle count
    is the total multiply-accumulate work divided by the array's peak rate,
    multiplied by the fMAC ``passes`` of the operand precisions.
    """
    if min(m, k, n) <= 0:
        return 0
    row_tiles = -(-m // array_rows)
    reduction_capacity = array_cols * k_per_cycle
    reduction_tiles = -(-k // reduction_capacity)
    fill = array_rows + array_cols - 2
    peak_macs_per_cycle = array_rows * array_cols * k_per_cycle
    compute = -(-(m * k * n * passes) // peak_macs_per_cycle)
    return int(compute + row_tiles * reduction_tiles * fill)
