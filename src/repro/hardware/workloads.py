"""Paper-scale workload descriptions: the GEMM shapes of each evaluated DNN.

The Figure 19/20 performance numbers are computed from "the computation
required for all convolutional and fully connected layers" of each model at
the paper's training batch sizes (256 for the CNNs, 16 for the Transformer,
64 for YOLOv2).  Each layer is described by the matrix-view dimensions of
Figure 3: a convolution with ``C`` input channels, ``N`` output channels,
``k x k`` kernels and ``OH x OW`` output resolution on a batch of ``B``
becomes a GEMM of ``(M, K, N) = (N_out, C*k*k, B*OH*OW)``; the two
backward-pass products permute those dimensions.

These shape lists follow the standard published architectures (ResNet-18/50,
MobileNet-v2, VGG-16, a 12-layer Transformer, YOLOv2); they drive the
analytical cycle model only, so exact parity with every implementation detail
(e.g. projection shortcuts) is not required for the relative comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = ["GemmShape", "Workload", "conv_gemm", "paper_workloads",
           "resnet18_workload", "resnet50_workload", "mobilenet_v2_workload",
           "vgg16_workload", "transformer_workload", "yolov2_workload"]


@dataclass(frozen=True)
class GemmShape:
    """One layer's forward-pass GEMM: (M x K) . (K x N)."""

    name: str
    m: int
    k: int
    n: int

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    def backward_activation(self) -> "GemmShape":
        """GEMM computing the activation gradients: ``∇A = W^T ∇O``."""
        return GemmShape(self.name + ".grad_a", self.k, self.m, self.n)

    def backward_weight(self) -> "GemmShape":
        """GEMM computing the weight gradients: ``∇W = ∇O A^T``."""
        return GemmShape(self.name + ".grad_w", self.m, self.n, self.k)


@dataclass(frozen=True)
class Workload:
    """A named list of forward-pass GEMMs plus training metadata."""

    name: str
    layers: List[GemmShape]
    batch_size: int
    target_metric: float
    target_name: str

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def total_training_macs(self) -> int:
        """MACs of one training iteration (forward + both backward products)."""
        total = 0
        for layer in self.layers:
            total += layer.macs
            total += layer.backward_activation().macs
            total += layer.backward_weight().macs
        return total


def conv_gemm(name: str, in_channels: int, out_channels: int, kernel: int,
              out_hw: int, batch: int) -> GemmShape:
    """GEMM shape of one convolution layer in the matrix view of Figure 3."""
    return GemmShape(name, out_channels, in_channels * kernel * kernel, batch * out_hw * out_hw)


# --------------------------------------------------------------------------- #
# CNN workloads (ImageNet, batch 256)
# --------------------------------------------------------------------------- #
def resnet18_workload(batch: int = 256, image: int = 224) -> Workload:
    layers = [conv_gemm("conv1", 3, 64, 7, image // 2, batch)]
    stage_channels = [64, 128, 256, 512]
    resolution = image // 4
    in_channels = 64
    for stage_index, channels in enumerate(stage_channels):
        for block in range(2):
            stride_block = stage_index > 0 and block == 0
            if stride_block:
                resolution //= 2
                layers.append(conv_gemm(f"s{stage_index}b{block}.down", in_channels, channels, 1,
                                        resolution, batch))
            layers.append(conv_gemm(f"s{stage_index}b{block}.conv1", in_channels, channels, 3,
                                    resolution, batch))
            layers.append(conv_gemm(f"s{stage_index}b{block}.conv2", channels, channels, 3,
                                    resolution, batch))
            in_channels = channels
    layers.append(GemmShape("fc", 1000, 512, batch))
    return Workload("resnet18", layers, batch, 68.0, "top-1 accuracy (%)")


def resnet50_workload(batch: int = 256, image: int = 224) -> Workload:
    layers = [conv_gemm("conv1", 3, 64, 7, image // 2, batch)]
    stage_blocks = [3, 4, 6, 3]
    stage_channels = [64, 128, 256, 512]
    resolution = image // 4
    in_channels = 64
    for stage_index, (blocks, channels) in enumerate(zip(stage_blocks, stage_channels)):
        for block in range(blocks):
            if stage_index > 0 and block == 0:
                resolution //= 2
            expanded = channels * 4
            prefix = f"s{stage_index}b{block}"
            layers.append(conv_gemm(f"{prefix}.conv1", in_channels, channels, 1, resolution, batch))
            layers.append(conv_gemm(f"{prefix}.conv2", channels, channels, 3, resolution, batch))
            layers.append(conv_gemm(f"{prefix}.conv3", channels, expanded, 1, resolution, batch))
            if block == 0:
                layers.append(conv_gemm(f"{prefix}.down", in_channels, expanded, 1, resolution, batch))
            in_channels = expanded
    layers.append(GemmShape("fc", 1000, 2048, batch))
    return Workload("resnet50", layers, batch, 75.0, "top-1 accuracy (%)")


def mobilenet_v2_workload(batch: int = 256, image: int = 224) -> Workload:
    # (expansion, channels, repeats, stride) from the MobileNet-v2 paper.
    settings = [(1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
                (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1)]
    layers = [conv_gemm("conv1", 3, 32, 3, image // 2, batch)]
    resolution = image // 2
    in_channels = 32
    for setting_index, (expansion, channels, repeats, stride) in enumerate(settings):
        for repeat in range(repeats):
            if repeat == 0 and stride == 2:
                resolution //= 2
            hidden = in_channels * expansion
            prefix = f"ir{setting_index}.{repeat}"
            if expansion != 1:
                layers.append(conv_gemm(f"{prefix}.expand", in_channels, hidden, 1, resolution, batch))
            # Depthwise convolution: one input channel per filter.
            layers.append(conv_gemm(f"{prefix}.depthwise", 1, hidden, 3, resolution, batch))
            layers.append(conv_gemm(f"{prefix}.project", hidden, channels, 1, resolution, batch))
            in_channels = channels
    layers.append(conv_gemm("conv_last", 320, 1280, 1, resolution, batch))
    layers.append(GemmShape("fc", 1000, 1280, batch))
    return Workload("mobilenet_v2", layers, batch, 68.0, "top-1 accuracy (%)")


def vgg16_workload(batch: int = 256, image: int = 224) -> Workload:
    stage_convs = [2, 2, 3, 3, 3]
    stage_channels = [64, 128, 256, 512, 512]
    layers: List[GemmShape] = []
    resolution = image
    in_channels = 3
    for stage_index, (convs, channels) in enumerate(zip(stage_convs, stage_channels)):
        for conv in range(convs):
            layers.append(conv_gemm(f"s{stage_index}.conv{conv}", in_channels, channels, 3,
                                    resolution, batch))
            in_channels = channels
        resolution //= 2
    layers.append(GemmShape("fc1", 4096, 512 * 7 * 7, batch))
    layers.append(GemmShape("fc2", 4096, 4096, batch))
    layers.append(GemmShape("fc3", 1000, 4096, batch))
    return Workload("vgg16", layers, batch, 69.0, "top-1 accuracy (%)")


# --------------------------------------------------------------------------- #
# Transformer (IWSLT14, batch 16) and YOLOv2 (VOC, batch 64)
# --------------------------------------------------------------------------- #
def transformer_workload(batch: int = 16, sequence_length: int = 32, hidden: int = 768,
                         ffn: int = 3072, num_layers: int = 12, heads: int = 12,
                         vocab: int = 32000) -> Workload:
    tokens = batch * sequence_length
    head_dim = hidden // heads
    layers: List[GemmShape] = []
    for layer in range(num_layers):
        prefix = f"layer{layer}"
        for proj in ("q", "k", "v", "out"):
            layers.append(GemmShape(f"{prefix}.{proj}_proj", hidden, hidden, tokens))
        # Attention score and context products, summed over heads.
        layers.append(GemmShape(f"{prefix}.qk", sequence_length, head_dim,
                                batch * heads * sequence_length))
        layers.append(GemmShape(f"{prefix}.pv", head_dim, sequence_length,
                                batch * heads * sequence_length))
        layers.append(GemmShape(f"{prefix}.ffn1", ffn, hidden, tokens))
        layers.append(GemmShape(f"{prefix}.ffn2", hidden, ffn, tokens))
    layers.append(GemmShape("output_proj", vocab, hidden, tokens))
    return Workload("transformer", layers, batch, 35.0, "BLEU")


def yolov2_workload(batch: int = 64, image: int = 416) -> Workload:
    # Darknet-19 backbone + detection head (channels, kernel, pool-after).
    config = [(32, 3, True), (64, 3, True), (128, 3, False), (64, 1, False), (128, 3, True),
              (256, 3, False), (128, 1, False), (256, 3, True), (512, 3, False), (256, 1, False),
              (512, 3, False), (256, 1, False), (512, 3, True), (1024, 3, False), (512, 1, False),
              (1024, 3, False), (512, 1, False), (1024, 3, False), (1024, 3, False), (1024, 3, False)]
    layers: List[GemmShape] = []
    resolution = image
    in_channels = 3
    for index, (channels, kernel, pool_after) in enumerate(config):
        layers.append(conv_gemm(f"conv{index}", in_channels, channels, kernel, resolution, batch))
        in_channels = channels
        if pool_after:
            resolution //= 2
    # Detection head: 5 anchors x (5 + 20 VOC classes) = 125 output channels.
    layers.append(conv_gemm("detect", 1024, 125, 1, resolution, batch))
    return Workload("yolov2", layers, batch, 73.0, "mAP (%)")


def paper_workloads() -> Dict[str, Workload]:
    """All six evaluation workloads keyed by the names used in Figure 20."""
    builders: Dict[str, Callable[[], Workload]] = {
        "resnet18": resnet18_workload,
        "resnet50": resnet50_workload,
        "mobilenet_v2": mobilenet_v2_workload,
        "vgg16": vgg16_workload,
        "transformer": transformer_workload,
        "yolov2": yolov2_workload,
    }
    return {name: builder() for name, builder in builders.items()}
