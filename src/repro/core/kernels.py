"""Fused fast-path kernels for BFP quantization.

This module is the hot path of the whole training substrate: every quantized
layer converts its weights, activations and gradients to BFP on each step, so
:func:`repro.core.bfp.bfp_quantize` is called three times per layer per
iteration.  The kernels here replace the readable-but-slow reference pipeline
with a fused implementation that is bit-compatible with it:

* **Exact exponents** -- shared exponents come from :func:`numpy.frexp`
  instead of ``floor(log2(x))``.  ``frexp`` decomposes ``x = m * 2**e`` with
  ``m in [0.5, 1)``, so ``floor(log2(x)) == e - 1`` holds *exactly* for every
  finite non-zero float, including exact powers of two and values one ulp
  below them where a rounded ``log2`` can land on the wrong integer.
* **Dtype preservation** -- float32 inputs are quantized in float32.  Every
  intermediate (scale by a power of two, add 0.5 or quantized noise, floor,
  clip, rescale) is exactly representable, so the result is bit-identical to
  computing in float64 and casting back, at half the memory traffic.
* **Fusion** -- one pass with ``np.ldexp``/``out=`` arguments replaces the
  reference chain of ~8 temporaries, and the grouping step avoids the pad
  copy entirely when the grouped axis is already divisible by ``group_size``.

The original seed implementation is preserved verbatim as
:func:`bfp_quantize_reference` / :func:`quantize_groups_reference`; it is the
golden model for the equivalence tests and the baseline for
``benchmarks/bench_perf_quantization.py``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Optional

import numpy as np

from .rounding import RoundingMode, VALID_MODES, apply_rounding, draw_noise

__all__ = [
    "MIN_EXPONENT",
    "set_profiler",
    "GroupedLayout",
    "LayoutCache",
    "default_layout_cache",
    "layout_cache_enabled",
    "set_layout_cache_enabled",
    "resolve_groups",
    "group_for_quantization",
    "shared_exponents",
    "quantize_groups",
    "bfp_quantize_fast",
    "group_values_reference",
    "shared_exponents_reference",
    "quantize_groups_reference",
    "bfp_quantize_reference",
]

#: Exponent assigned to all-zero groups.  Matches the smallest normal FP32
#: exponent so that zero groups never dominate the shared-exponent window.
MIN_EXPONENT = -126

#: Observability hook.  ``None`` (the default) keeps the hot paths on their
#: pre-existing code path: the instrumented kernels do one global load and
#: one ``is not None`` branch, allocating nothing.  Installed/removed by
#: :mod:`repro.observability` -- this module never imports observability.
_PROFILER = None


def set_profiler(profiler) -> object:
    """Install (or with ``None`` remove) the kernel profiler; returns the
    previous one.  ``profiler`` needs one method:
    ``record(kernel, seconds, elements)``."""
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous


# --------------------------------------------------------------------------- #
# Persistent grouped layouts
# --------------------------------------------------------------------------- #
class GroupedLayout:
    """Precomputed BFP grouping for one ``(shape, dtype, axis, group_size)``.

    Quantizing a tensor first reshapes it into ``(rows, n_groups, group_size)``
    groups.  The layout of that reshape -- moved shape, row count, pad width --
    depends only on the tensor's shape, dtype, grouped axis and group size, all
    of which are invariant across training iterations for a given layer tensor.
    A ``GroupedLayout`` derives them once and additionally owns a reusable
    zero-padded workspace so that padded or non-contiguous tensors are copied
    into the *same* buffer every call instead of allocating (and re-zeroing)
    a fresh one.

    The workspace makes :meth:`group` results transient: they are valid only
    until the next :meth:`group` call on the same layout.  Quantization
    consumes the groups within a single call and never returns a view of
    them, so this is invisible to callers of ``bfp_quantize``.  It also makes
    a shared layout non-reentrant: concurrent conversions of same-shaped
    padded tensors through one layout (e.g. the process-wide default cache
    from multiple threads) would race on the workspace.  The training
    substrate is single-threaded; multi-threaded callers must pass explicit
    per-thread layouts or disable the default cache.
    """

    __slots__ = (
        "shape", "dtype", "group_size", "axis", "moved_shape",
        "length", "rows", "pad", "n_groups", "_workspace",
    )

    def __init__(self, shape, dtype, group_size: int, axis: int = -1):
        shape = tuple(int(s) for s in shape) if len(tuple(shape)) else (1,)
        ndim = len(shape)
        axis = axis if axis >= 0 else axis + ndim
        if not 0 <= axis < ndim:
            raise ValueError(f"axis {axis} out of range for shape {shape}")
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.group_size = int(group_size)
        self.axis = axis
        self.moved_shape = shape[:axis] + shape[axis + 1:] + (shape[axis],)
        self.length = self.moved_shape[-1]
        self.rows = int(np.prod(self.moved_shape[:-1])) if ndim > 1 else 1
        self.pad = (-self.length) % self.group_size
        self.n_groups = (self.length + self.pad) // self.group_size
        self._workspace = None

    def group(self, x: np.ndarray) -> np.ndarray:
        """Reshape ``x`` into ``(rows, n_groups, group_size)`` groups.

        Returns a read-only-by-convention view of ``x`` when no pad or copy
        is needed, otherwise a view of the layout's reusable workspace (valid
        until the next call).
        """
        if x.ndim == 0:
            x = x.reshape(1)
        if x.shape != self.shape:
            raise ValueError(f"layout built for shape {self.shape}, got {x.shape}")
        moved = np.moveaxis(x, self.axis, -1)
        if self.pad == 0 and moved.flags.c_contiguous:
            return moved.reshape(self.rows, self.n_groups, self.group_size)
        workspace = self._workspace
        if workspace is None:
            # Pad columns are zeroed once here and never written afterwards
            # (only [:, :length] is assigned), so they stay zero across reuse.
            workspace = np.zeros((self.rows, self.length + self.pad), dtype=self.dtype)
            self._workspace = workspace
        destination = workspace[:, :self.length].reshape(self.moved_shape)
        if destination.base is None:  # pragma: no cover - reshape made a copy
            # Splitting the row axis of the strided slice is always expressible
            # as a view in practice; keep a correct (slower) fallback anyway.
            workspace[:, :self.length] = moved.reshape(self.rows, self.length)
        else:
            np.copyto(destination, moved)
        return workspace.reshape(self.rows, self.n_groups, self.group_size)

    def ungroup(self, groups: np.ndarray, original_shape) -> np.ndarray:
        """Invert :meth:`group`, restoring ``original_shape``."""
        result = ungroup_values_reference(groups, self.pad, self.moved_shape, axis=self.axis)
        return result.reshape(original_shape)


class LayoutCache:
    """LRU cache of :class:`GroupedLayout` descriptors.

    Keyed on ``(shape, dtype, group_size, axis)``; bounded so that shape
    churn (e.g. ragged final batches) cannot grow workspaces without limit.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[tuple, GroupedLayout]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def get(self, shape, dtype, group_size: int, axis: int = -1) -> GroupedLayout:
        shape = tuple(shape) or (1,)
        axis = int(axis)
        if axis < 0:
            # Normalize so axis=-1 and axis=ndim-1 share one entry (and one
            # workspace); GroupedLayout validates the range.
            axis += len(shape)
        key = (shape, np.dtype(dtype).str, int(group_size), axis)
        layout = self._entries.get(key)
        if layout is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return layout
        self.misses += 1
        layout = GroupedLayout(shape, dtype, group_size, axis=axis)
        self._entries[key] = layout
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return layout

    def layout_for(self, x: np.ndarray, group_size: int, axis: int = -1) -> GroupedLayout:
        """Layout for an array, resolving non-float dtypes the way grouping does."""
        dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
        shape = x.shape if x.ndim else (1,)
        return self.get(shape, dtype, group_size, axis=axis)


_DEFAULT_LAYOUT_CACHE = LayoutCache()
_LAYOUT_CACHE_ENABLED = True


def default_layout_cache() -> LayoutCache:
    """The process-wide layout cache used when no explicit layout is passed."""
    return _DEFAULT_LAYOUT_CACHE


def layout_cache_enabled() -> bool:
    return _LAYOUT_CACHE_ENABLED


def set_layout_cache_enabled(enabled: bool) -> bool:
    """Enable/disable the default layout cache; returns the previous setting.

    Benchmarks use this to time the uncached path; the cached and uncached
    paths are bit-identical (asserted by ``tests/core/test_layout_cache.py``).
    """
    global _LAYOUT_CACHE_ENABLED
    previous = _LAYOUT_CACHE_ENABLED
    _LAYOUT_CACHE_ENABLED = bool(enabled)
    return previous


def resolve_groups(x, group_size: int, axis: int = -1, layout: Optional[GroupedLayout] = None):
    """Group ``x`` for quantization through a layout when one is available.

    Single entry point for the three grouping consumers (fake quantization,
    packed quantization, ``relative_improvement``): an explicit ``layout`` is
    validated and used, otherwise one comes from the default cache (when
    enabled), otherwise the uncached :func:`group_for_quantization` runs.
    Returns ``(groups, pad, moved_shape)``.
    """
    x = np.asarray(x)
    if layout is not None:
        ndim = max(x.ndim, 1)
        normalized_axis = axis + ndim if axis < 0 else axis
        expected_dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
        if (layout.group_size != int(group_size) or layout.axis != normalized_axis
                or layout.dtype != expected_dtype):
            raise ValueError(
                f"layout built for (group_size={layout.group_size}, axis={layout.axis}, "
                f"dtype={layout.dtype}); got (group_size={group_size}, "
                f"axis={normalized_axis}, dtype={expected_dtype})")
    elif _LAYOUT_CACHE_ENABLED:
        layout = _DEFAULT_LAYOUT_CACHE.layout_for(x, group_size, axis=axis)
    if layout is not None:
        values = x if x.dtype == layout.dtype else x.astype(layout.dtype)
        return layout.group(values), layout.pad, layout.moved_shape
    return group_for_quantization(x, group_size, axis=axis)


# --------------------------------------------------------------------------- #
# Fast path
# --------------------------------------------------------------------------- #
def group_for_quantization(x, group_size: int, axis: int = -1):
    """Reshape ``x`` into BFP groups, preserving its floating dtype.

    Returns ``(groups, pad, moved_shape)`` with ``groups`` of shape
    ``(rows, n_groups, group_size)``.  When the grouped axis is contiguous and
    already divisible by ``group_size`` the result is a *view* of ``x`` -- no
    copy is made, so callers must treat ``groups`` as read-only.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    if x.ndim == 0:
        x = x.reshape(1)
    moved = np.moveaxis(x, axis, -1)
    moved_shape = moved.shape
    length = moved_shape[-1]
    rows = moved.reshape(-1, length)
    pad = (-length) % group_size
    if pad:
        padded = np.zeros((rows.shape[0], length + pad), dtype=rows.dtype)
        padded[:, :length] = rows
        rows = padded
    return rows.reshape(rows.shape[0], -1, group_size), pad, moved_shape


def _fold_group_max(magnitudes: np.ndarray) -> np.ndarray:
    """``magnitudes.max(axis=-1)`` via a halving tree of ``np.maximum``.

    Pairwise folding over array halves vectorizes ~3x better than a reduction
    along a short trailing axis, which is the single hottest operation of the
    conversion.  ``magnitudes`` itself is left untouched.
    """
    size = magnitudes.shape[-1]
    if size == 0:
        return np.zeros(magnitudes.shape[:-1], dtype=magnitudes.dtype)
    while size > 1:
        half = size // 2
        folded = np.maximum(magnitudes[..., :half], magnitudes[..., half:2 * half])
        if size & 1:
            np.maximum(folded[..., :1], magnitudes[..., -1:], out=folded[..., :1])
        magnitudes = folded
        size = half
    return magnitudes[..., 0]


def _exponents_from_group_max(group_max: np.ndarray, exponent_bits: Optional[int]) -> np.ndarray:
    exponents = np.frexp(group_max)[1].astype(np.int64)
    exponents -= 1
    nonzero = group_max > 0
    exponents[~nonzero] = MIN_EXPONENT
    if exponent_bits is not None and exponents.size and np.any(nonzero):
        window = (1 << exponent_bits) - 1
        top = int(exponents[nonzero].max())
        np.maximum(exponents, top - window, out=exponents)
    return exponents


def shared_exponents(groups: np.ndarray, exponent_bits: Optional[int] = None) -> np.ndarray:
    """Shared exponent of each group via exact ``frexp`` extraction.

    Equivalent to ``floor(log2(max |group|))`` -- but exact, because ``frexp``
    reads the exponent field instead of rounding a transcendental: for
    ``x = m * 2**e`` with ``m in [0.5, 1)``, ``floor(log2(x))`` is ``e - 1``.
    All-zero groups receive :data:`MIN_EXPONENT`; the optional
    ``exponent_bits`` window clamp matches the reference implementation.
    """
    group_max = _fold_group_max(np.abs(np.asarray(groups)))
    return _exponents_from_group_max(group_max, exponent_bits)


def quantize_groups(
    groups: np.ndarray,
    exponents: np.ndarray,
    mantissa_bits: int,
    rounding: str = "nearest",
    rng=None,
    noise_bits: Optional[int] = 8,
    return_packed: bool = False,
    magnitudes: Optional[np.ndarray] = None,
    group_max: Optional[np.ndarray] = None,
):
    """Fused scale -> round -> clip -> rescale on grouped values.

    ``groups`` is never mutated (it may be a view of the caller's tensor).
    ``magnitudes`` may pass in a precomputed ``np.abs(groups)`` -- it is
    consumed (overwritten) as the working buffer, saving one full-size pass;
    :func:`bfp_quantize_fast` reuses the buffer that already fed the exponent
    reduction.  ``group_max`` may pass in the per-group maximum magnitudes so
    all-zero groups (whose :data:`MIN_EXPONENT` sentinel would otherwise
    inflate the shift range) keep the tensor on the broadcast fast path.
    Returns ``(quantized, signs, mantissas)``; ``signs`` and
    ``mantissas`` are ``None`` unless ``return_packed`` is set.  The
    arithmetic stays in the dtype of ``groups``: power-of-two scaling via
    ``np.ldexp`` is exact, the rounding offsets (0.5 or ``k / 2**noise_bits``
    noise) and the clipped integer mantissas are exactly representable in
    float32 and float64 alike, so the result is bit-identical to the float64
    reference.
    """
    profiler = _PROFILER
    start = time.perf_counter() if profiler is not None else 0.0
    if rounding not in VALID_MODES:
        raise ValueError(f"unknown rounding mode {rounding!r}; expected one of {VALID_MODES}")
    groups = np.asarray(groups)
    if not np.issubdtype(groups.dtype, np.floating):
        groups = groups.astype(np.float64)
        magnitudes = None
    if groups.dtype == np.float32 and mantissa_bits > 23:
        # Scaled magnitudes reach 2**mantissa_bits, where float32 can no
        # longer represent the +0.5 / noise offsets exactly; match the
        # float64 reference by computing in float64 (callers cast back).
        groups = groups.astype(np.float64)
        magnitudes = None
    shift = np.subtract(mantissa_bits - 1, exponents).astype(np.int32)[..., None]
    if group_max is not None:
        # All-zero groups quantize to zero under any scale, but their
        # MIN_EXPONENT sentinel would otherwise push max_shift past the
        # float32 safe range and route the whole tensor down the slow
        # elementwise-ldexp path (ReLU activations routinely contain a few
        # all-zero groups).  Neutralize their shift before taking the max.
        shift = np.where(group_max[..., None] > 0, shift, np.int32(0))
    max_shift = int(np.abs(shift).max()) if shift.size else 0
    # When every 2**shift is a normal float we can form the (small) scale
    # arrays once and broadcast-multiply, which vectorizes far better than an
    # elementwise ldexp.  Both routes are correctly rounded, hence identical.
    safe_shift = 126 if groups.dtype == np.float32 else 1022
    if max_shift <= safe_shift:
        one = groups.dtype.type(1)
        scale = np.ldexp(one, shift)
        if magnitudes is not None:
            magnitudes *= scale
        else:
            magnitudes = groups * scale
            np.fabs(magnitudes, out=magnitudes)
        sign_source = groups
    else:
        sign_source = np.ldexp(groups, shift)
        magnitudes = np.fabs(sign_source)
    if rounding == RoundingMode.NEAREST:
        magnitudes += 0.5
    elif rounding == RoundingMode.STOCHASTIC:
        magnitudes += draw_noise(rng, magnitudes.shape, noise_bits)
    np.floor(magnitudes, out=magnitudes)
    limit = float((1 << mantissa_bits) - 1)
    np.minimum(magnitudes, limit, out=magnitudes)
    signs = mantissas = None
    if return_packed:
        mantissas = magnitudes.astype(np.int64)
        signs = np.sign(sign_source).astype(np.int8)
        signs[mantissas == 0] = 0
    np.copysign(magnitudes, sign_source, out=magnitudes)
    if max_shift <= safe_shift:
        magnitudes *= np.ldexp(one, np.negative(shift))
        quantized = magnitudes
    else:
        quantized = np.ldexp(magnitudes, np.negative(shift), out=magnitudes)
    if profiler is not None:
        profiler.record("quantize_groups", time.perf_counter() - start,
                        quantized.size)
    return quantized, signs, mantissas


def bfp_quantize_fast(
    x,
    mantissa_bits: int = 4,
    group_size: int = 16,
    exponent_bits: Optional[int] = 8,
    rounding: str = "nearest",
    axis: int = -1,
    rng=None,
    noise_bits: Optional[int] = 8,
    layout: Optional[GroupedLayout] = None,
) -> np.ndarray:
    """Fast-path fake quantization (same contract as the reference ``BFP(X, m)``).

    ``layout`` may pass a :class:`GroupedLayout` for the input's exact
    ``(shape, dtype, axis, group_size)``; when omitted one is fetched from the
    default :class:`LayoutCache` (if enabled) so repeated conversions of
    same-shaped tensors -- the per-iteration W/A/G pattern of training --
    skip layout re-derivation and reuse the padded-grouping workspace.
    """
    profiler = _PROFILER
    start = time.perf_counter() if profiler is not None else 0.0
    x = np.asarray(x)
    original_dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    groups, pad, moved_shape = resolve_groups(x, group_size, axis=axis, layout=layout)
    magnitudes = np.abs(groups)
    group_max = _fold_group_max(magnitudes)
    exponents = _exponents_from_group_max(group_max, exponent_bits)
    quantized, _, _ = quantize_groups(
        groups, exponents, mantissa_bits, rounding,
        rng=rng, noise_bits=noise_bits, magnitudes=magnitudes, group_max=group_max,
    )
    result = ungroup_values_reference(quantized, pad, moved_shape, axis=axis)
    result = result.reshape(x.shape).astype(original_dtype, copy=False)
    if profiler is not None:
        profiler.record("bfp_quantize_fast", time.perf_counter() - start,
                        result.size)
    return result


# --------------------------------------------------------------------------- #
# Reference path (the seed implementation, kept verbatim as the golden model)
# --------------------------------------------------------------------------- #
def group_values_reference(x: np.ndarray, group_size: int, axis: int = -1):
    """Seed grouping: always upcasts to float64 and copies when padding."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 0:
        x = x.reshape(1)
    moved = np.moveaxis(x, axis, -1)
    moved_shape = moved.shape
    length = moved_shape[-1]
    rows = moved.reshape(-1, length)
    pad = (-length) % group_size
    if pad:
        rows = np.concatenate([rows, np.zeros((rows.shape[0], pad), dtype=np.float64)],
                              axis=1)
    groups = rows.reshape(rows.shape[0], -1, group_size)
    return groups, pad, moved_shape


def ungroup_values_reference(groups: np.ndarray, pad: int, moved_shape, axis: int = -1) -> np.ndarray:
    """Invert :func:`group_values_reference`."""
    rows = groups.reshape(groups.shape[0], -1)
    if pad:
        rows = rows[:, :-pad]
    moved = rows.reshape(moved_shape)
    return np.moveaxis(moved, -1, axis)


def shared_exponents_reference(groups: np.ndarray, exponent_bits: Optional[int] = None) -> np.ndarray:
    """Seed exponent derivation via ``floor(log2(max |group|))``."""
    magnitudes = np.abs(groups)
    group_max = magnitudes.max(axis=-1)
    exponents = np.full(group_max.shape, MIN_EXPONENT, dtype=np.int64)
    nonzero = group_max > 0
    with np.errstate(divide="ignore"):
        exponents[nonzero] = np.floor(np.log2(group_max[nonzero])).astype(np.int64)
    if exponent_bits is not None and exponents.size and np.any(nonzero):
        window = (1 << exponent_bits) - 1
        top = int(exponents[nonzero].max())
        floor_exp = top - window
        exponents = np.maximum(exponents, floor_exp)
    return exponents


def quantize_groups_reference(
    groups: np.ndarray,
    exponents: np.ndarray,
    mantissa_bits: int,
    rounding: str,
    rng,
    noise_bits: Optional[int],
):
    """Seed quantization of grouped values; returns ``(quantized, signs, mantissas, scales)``."""
    scales = np.power(2.0, exponents.astype(np.float64) - (mantissa_bits - 1))
    scaled = groups / scales[..., None]
    rounded = apply_rounding(scaled, rounding, rng=rng, noise_bits=noise_bits)
    limit = (1 << mantissa_bits) - 1
    rounded = np.clip(rounded, -limit, limit)
    signs = np.sign(rounded).astype(np.int8)
    mantissas = np.abs(rounded).astype(np.int64)
    quantized = rounded * scales[..., None]
    return quantized, signs, mantissas, scales


def bfp_quantize_reference(
    x,
    mantissa_bits: int = 4,
    group_size: int = 16,
    exponent_bits: Optional[int] = 8,
    rounding: str = "nearest",
    axis: int = -1,
    rng=None,
    noise_bits: Optional[int] = 8,
) -> np.ndarray:
    """The seed ``bfp_quantize`` implementation, kept as the golden reference."""
    x = np.asarray(x)
    original_dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    groups, pad, moved_shape = group_values_reference(x, group_size, axis=axis)
    exponents = shared_exponents_reference(groups, exponent_bits)
    quantized, _, _, _ = quantize_groups_reference(
        groups, exponents, mantissa_bits, rounding, rng, noise_bits
    )
    result = ungroup_values_reference(quantized, pad, moved_shape, axis=axis)
    return result.reshape(x.shape).astype(original_dtype)
