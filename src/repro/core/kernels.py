"""Fused fast-path kernels for BFP quantization.

This module is the hot path of the whole training substrate: every quantized
layer converts its weights, activations and gradients to BFP on each step, so
:func:`repro.core.bfp.bfp_quantize` is called three times per layer per
iteration.  The kernels here replace the readable-but-slow reference pipeline
with a fused implementation that is bit-compatible with it:

* **Exact exponents** -- shared exponents come from :func:`numpy.frexp`
  instead of ``floor(log2(x))``.  ``frexp`` decomposes ``x = m * 2**e`` with
  ``m in [0.5, 1)``, so ``floor(log2(x)) == e - 1`` holds *exactly* for every
  finite non-zero float, including exact powers of two and values one ulp
  below them where a rounded ``log2`` can land on the wrong integer.
* **Dtype preservation** -- float32 inputs are quantized in float32.  Every
  intermediate (scale by a power of two, add 0.5 or quantized noise, floor,
  clip, rescale) is exactly representable, so the result is bit-identical to
  computing in float64 and casting back, at half the memory traffic.
* **Fusion** -- one pass with ``np.ldexp``/``out=`` arguments replaces the
  reference chain of ~8 temporaries, and the grouping step avoids the pad
  copy entirely when the grouped axis is already divisible by ``group_size``.

The original seed implementation is preserved verbatim as
:func:`bfp_quantize_reference` / :func:`quantize_groups_reference`; it is the
golden model for the equivalence tests and the baseline for
``benchmarks/bench_perf_quantization.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .rounding import RoundingMode, VALID_MODES, apply_rounding, draw_noise

__all__ = [
    "MIN_EXPONENT",
    "group_for_quantization",
    "shared_exponents",
    "quantize_groups",
    "bfp_quantize_fast",
    "group_values_reference",
    "shared_exponents_reference",
    "quantize_groups_reference",
    "bfp_quantize_reference",
]

#: Exponent assigned to all-zero groups.  Matches the smallest normal FP32
#: exponent so that zero groups never dominate the shared-exponent window.
MIN_EXPONENT = -126


# --------------------------------------------------------------------------- #
# Fast path
# --------------------------------------------------------------------------- #
def group_for_quantization(x, group_size: int, axis: int = -1):
    """Reshape ``x`` into BFP groups, preserving its floating dtype.

    Returns ``(groups, pad, moved_shape)`` with ``groups`` of shape
    ``(rows, n_groups, group_size)``.  When the grouped axis is contiguous and
    already divisible by ``group_size`` the result is a *view* of ``x`` -- no
    copy is made, so callers must treat ``groups`` as read-only.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    if x.ndim == 0:
        x = x.reshape(1)
    moved = np.moveaxis(x, axis, -1)
    moved_shape = moved.shape
    length = moved_shape[-1]
    rows = moved.reshape(-1, length)
    pad = (-length) % group_size
    if pad:
        padded = np.zeros((rows.shape[0], length + pad), dtype=rows.dtype)
        padded[:, :length] = rows
        rows = padded
    return rows.reshape(rows.shape[0], -1, group_size), pad, moved_shape


def _fold_group_max(magnitudes: np.ndarray) -> np.ndarray:
    """``magnitudes.max(axis=-1)`` via a halving tree of ``np.maximum``.

    Pairwise folding over array halves vectorizes ~3x better than a reduction
    along a short trailing axis, which is the single hottest operation of the
    conversion.  ``magnitudes`` itself is left untouched.
    """
    size = magnitudes.shape[-1]
    if size == 0:
        return np.zeros(magnitudes.shape[:-1], dtype=magnitudes.dtype)
    while size > 1:
        half = size // 2
        folded = np.maximum(magnitudes[..., :half], magnitudes[..., half:2 * half])
        if size & 1:
            np.maximum(folded[..., :1], magnitudes[..., -1:], out=folded[..., :1])
        magnitudes = folded
        size = half
    return magnitudes[..., 0]


def _exponents_from_group_max(group_max: np.ndarray, exponent_bits: Optional[int]) -> np.ndarray:
    exponents = np.frexp(group_max)[1].astype(np.int64)
    exponents -= 1
    nonzero = group_max > 0
    exponents[~nonzero] = MIN_EXPONENT
    if exponent_bits is not None and exponents.size and np.any(nonzero):
        window = (1 << exponent_bits) - 1
        top = int(exponents[nonzero].max())
        np.maximum(exponents, top - window, out=exponents)
    return exponents


def shared_exponents(groups: np.ndarray, exponent_bits: Optional[int] = None) -> np.ndarray:
    """Shared exponent of each group via exact ``frexp`` extraction.

    Equivalent to ``floor(log2(max |group|))`` -- but exact, because ``frexp``
    reads the exponent field instead of rounding a transcendental: for
    ``x = m * 2**e`` with ``m in [0.5, 1)``, ``floor(log2(x))`` is ``e - 1``.
    All-zero groups receive :data:`MIN_EXPONENT`; the optional
    ``exponent_bits`` window clamp matches the reference implementation.
    """
    group_max = _fold_group_max(np.abs(np.asarray(groups)))
    return _exponents_from_group_max(group_max, exponent_bits)


def quantize_groups(
    groups: np.ndarray,
    exponents: np.ndarray,
    mantissa_bits: int,
    rounding: str = "nearest",
    rng=None,
    noise_bits: Optional[int] = 8,
    return_packed: bool = False,
    magnitudes: Optional[np.ndarray] = None,
    group_max: Optional[np.ndarray] = None,
):
    """Fused scale -> round -> clip -> rescale on grouped values.

    ``groups`` is never mutated (it may be a view of the caller's tensor).
    ``magnitudes`` may pass in a precomputed ``np.abs(groups)`` -- it is
    consumed (overwritten) as the working buffer, saving one full-size pass;
    :func:`bfp_quantize_fast` reuses the buffer that already fed the exponent
    reduction.  ``group_max`` may pass in the per-group maximum magnitudes so
    all-zero groups (whose :data:`MIN_EXPONENT` sentinel would otherwise
    inflate the shift range) keep the tensor on the broadcast fast path.
    Returns ``(quantized, signs, mantissas)``; ``signs`` and
    ``mantissas`` are ``None`` unless ``return_packed`` is set.  The
    arithmetic stays in the dtype of ``groups``: power-of-two scaling via
    ``np.ldexp`` is exact, the rounding offsets (0.5 or ``k / 2**noise_bits``
    noise) and the clipped integer mantissas are exactly representable in
    float32 and float64 alike, so the result is bit-identical to the float64
    reference.
    """
    if rounding not in VALID_MODES:
        raise ValueError(f"unknown rounding mode {rounding!r}; expected one of {VALID_MODES}")
    groups = np.asarray(groups)
    if not np.issubdtype(groups.dtype, np.floating):
        groups = groups.astype(np.float64)
        magnitudes = None
    if groups.dtype == np.float32 and mantissa_bits > 23:
        # Scaled magnitudes reach 2**mantissa_bits, where float32 can no
        # longer represent the +0.5 / noise offsets exactly; match the
        # float64 reference by computing in float64 (callers cast back).
        groups = groups.astype(np.float64)
        magnitudes = None
    shift = np.subtract(mantissa_bits - 1, exponents).astype(np.int32)[..., None]
    if group_max is not None:
        # All-zero groups quantize to zero under any scale, but their
        # MIN_EXPONENT sentinel would otherwise push max_shift past the
        # float32 safe range and route the whole tensor down the slow
        # elementwise-ldexp path (ReLU activations routinely contain a few
        # all-zero groups).  Neutralize their shift before taking the max.
        shift = np.where(group_max[..., None] > 0, shift, np.int32(0))
    max_shift = int(np.abs(shift).max()) if shift.size else 0
    # When every 2**shift is a normal float we can form the (small) scale
    # arrays once and broadcast-multiply, which vectorizes far better than an
    # elementwise ldexp.  Both routes are correctly rounded, hence identical.
    safe_shift = 126 if groups.dtype == np.float32 else 1022
    if max_shift <= safe_shift:
        one = groups.dtype.type(1)
        scale = np.ldexp(one, shift)
        if magnitudes is not None:
            magnitudes *= scale
        else:
            magnitudes = groups * scale
            np.fabs(magnitudes, out=magnitudes)
        sign_source = groups
    else:
        sign_source = np.ldexp(groups, shift)
        magnitudes = np.fabs(sign_source)
    if rounding == RoundingMode.NEAREST:
        magnitudes += 0.5
    elif rounding == RoundingMode.STOCHASTIC:
        magnitudes += draw_noise(rng, magnitudes.shape, noise_bits)
    np.floor(magnitudes, out=magnitudes)
    limit = float((1 << mantissa_bits) - 1)
    np.minimum(magnitudes, limit, out=magnitudes)
    signs = mantissas = None
    if return_packed:
        mantissas = magnitudes.astype(np.int64)
        signs = np.sign(sign_source).astype(np.int8)
        signs[mantissas == 0] = 0
    np.copysign(magnitudes, sign_source, out=magnitudes)
    if max_shift <= safe_shift:
        magnitudes *= np.ldexp(one, np.negative(shift))
        quantized = magnitudes
    else:
        quantized = np.ldexp(magnitudes, np.negative(shift), out=magnitudes)
    return quantized, signs, mantissas


def bfp_quantize_fast(
    x,
    mantissa_bits: int = 4,
    group_size: int = 16,
    exponent_bits: Optional[int] = 8,
    rounding: str = "nearest",
    axis: int = -1,
    rng=None,
    noise_bits: Optional[int] = 8,
) -> np.ndarray:
    """Fast-path fake quantization (same contract as the reference ``BFP(X, m)``)."""
    x = np.asarray(x)
    original_dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    groups, pad, moved_shape = group_for_quantization(x, group_size, axis=axis)
    magnitudes = np.abs(groups)
    group_max = _fold_group_max(magnitudes)
    exponents = _exponents_from_group_max(group_max, exponent_bits)
    quantized, _, _ = quantize_groups(
        groups, exponents, mantissa_bits, rounding,
        rng=rng, noise_bits=noise_bits, magnitudes=magnitudes, group_max=group_max,
    )
    result = ungroup_values_reference(quantized, pad, moved_shape, axis=axis)
    return result.reshape(x.shape).astype(original_dtype, copy=False)


# --------------------------------------------------------------------------- #
# Reference path (the seed implementation, kept verbatim as the golden model)
# --------------------------------------------------------------------------- #
def group_values_reference(x: np.ndarray, group_size: int, axis: int = -1):
    """Seed grouping: always upcasts to float64 and copies when padding."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 0:
        x = x.reshape(1)
    moved = np.moveaxis(x, axis, -1)
    moved_shape = moved.shape
    length = moved_shape[-1]
    rows = moved.reshape(-1, length)
    pad = (-length) % group_size
    if pad:
        rows = np.concatenate([rows, np.zeros((rows.shape[0], pad))], axis=1)
    groups = rows.reshape(rows.shape[0], -1, group_size)
    return groups, pad, moved_shape


def ungroup_values_reference(groups: np.ndarray, pad: int, moved_shape, axis: int = -1) -> np.ndarray:
    """Invert :func:`group_values_reference`."""
    rows = groups.reshape(groups.shape[0], -1)
    if pad:
        rows = rows[:, :-pad]
    moved = rows.reshape(moved_shape)
    return np.moveaxis(moved, -1, axis)


def shared_exponents_reference(groups: np.ndarray, exponent_bits: Optional[int] = None) -> np.ndarray:
    """Seed exponent derivation via ``floor(log2(max |group|))``."""
    magnitudes = np.abs(groups)
    group_max = magnitudes.max(axis=-1)
    exponents = np.full(group_max.shape, MIN_EXPONENT, dtype=np.int64)
    nonzero = group_max > 0
    with np.errstate(divide="ignore"):
        exponents[nonzero] = np.floor(np.log2(group_max[nonzero])).astype(np.int64)
    if exponent_bits is not None and exponents.size and np.any(nonzero):
        window = (1 << exponent_bits) - 1
        top = int(exponents[nonzero].max())
        floor_exp = top - window
        exponents = np.maximum(exponents, floor_exp)
    return exponents


def quantize_groups_reference(
    groups: np.ndarray,
    exponents: np.ndarray,
    mantissa_bits: int,
    rounding: str,
    rng,
    noise_bits: Optional[int],
):
    """Seed quantization of grouped values; returns ``(quantized, signs, mantissas, scales)``."""
    scales = np.power(2.0, exponents.astype(np.float64) - (mantissa_bits - 1))
    scaled = groups / scales[..., None]
    rounded = apply_rounding(scaled, rounding, rng=rng, noise_bits=noise_bits)
    limit = (1 << mantissa_bits) - 1
    rounded = np.clip(rounded, -limit, limit)
    signs = np.sign(rounded).astype(np.int8)
    mantissas = np.abs(rounded).astype(np.int64)
    quantized = rounded * scales[..., None]
    return quantized, signs, mantissas, scales


def bfp_quantize_reference(
    x,
    mantissa_bits: int = 4,
    group_size: int = 16,
    exponent_bits: Optional[int] = 8,
    rounding: str = "nearest",
    axis: int = -1,
    rng=None,
    noise_bits: Optional[int] = 8,
) -> np.ndarray:
    """The seed ``bfp_quantize`` implementation, kept as the golden reference."""
    x = np.asarray(x)
    original_dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    groups, pad, moved_shape = group_values_reference(x, group_size, axis=axis)
    exponents = shared_exponents_reference(groups, exponent_bits)
    quantized, _, _, _ = quantize_groups_reference(
        groups, exponents, mantissa_bits, rounding, rng, noise_bits
    )
    result = ungroup_values_reference(quantized, pad, moved_shape, axis=axis)
    return result.reshape(x.shape).astype(original_dtype)
