"""Block Floating Point (BFP) quantization.

A BFP group is a set of ``g`` values that share a single exponent while each
value keeps its own short signed mantissa (Figure 2, bottom row).  Conversion
from FP32 follows Figure 4:

1. find the maximum exponent in the group (it becomes the shared exponent),
2. align every mantissa by right-shifting it by the difference between its
   own exponent and the shared exponent,
3. optionally add stochastic noise (gradients only),
4. truncate (or round) the aligned mantissa to ``m`` bits.

Two entry points are provided:

* :func:`bfp_quantize` -- "fake quantization": returns an FP32 array whose
  values lie exactly on the BFP grid.  This is what the training substrate
  uses to simulate BFP arithmetic.
* :func:`bfp_quantize_tensor` -- returns a :class:`BFPTensor` holding the
  packed integer representation (signs, mantissas, shared exponents), which
  the hardware model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from . import kernels
from .kernels import MIN_EXPONENT

__all__ = [
    "BFPConfig",
    "BFPTensor",
    "bfp_quantize",
    "bfp_quantize_tensor",
    "compute_group_exponents",
    "group_values",
    "ungroup_values",
    "MIN_EXPONENT",
    "set_sanitizer",
]

#: Invariant-sanitizer hook (same gate idiom as the kernel profiler).
#: ``None`` keeps :class:`BFPTensor` construction on the pre-existing code
#: path: one global load and one branch.  Installed/removed by
#: :mod:`repro.devtools.sanitize` -- this module never imports devtools.
_SANITIZER = None


def set_sanitizer(sanitizer) -> object:
    """Install (or with ``None`` remove) the BFP invariant sanitizer;
    returns the previous one.  ``sanitizer`` needs one method:
    ``check_bfp_tensor(bfp_tensor)``."""
    global _SANITIZER
    previous = _SANITIZER
    _SANITIZER = sanitizer
    return previous


@dataclass(frozen=True)
class BFPConfig:
    """Configuration of a BFP format.

    Parameters
    ----------
    mantissa_bits:
        Number of magnitude bits per mantissa (the sign bit is separate),
        written ``m`` in the paper.  FAST uses 2 or 4.
    group_size:
        Number of values sharing one exponent, written ``g``.  The paper uses
        16 unless stated otherwise.
    exponent_bits:
        Width of the shared exponent field, written ``e``.  When not ``None``
        the exponents of all groups in a tensor must fit in a window of
        ``2**exponent_bits`` values anchored at the largest group exponent;
        groups below the window are clamped to its bottom, modelling the
        dynamic-range loss discussed in Section III-C.
    rounding:
        Rounding mode applied to the aligned mantissas: ``"nearest"``,
        ``"truncate"`` or ``"stochastic"``.
    noise_bits:
        Number of random bits used by stochastic rounding.
    """

    mantissa_bits: int = 4
    group_size: int = 16
    exponent_bits: Optional[int] = 8
    rounding: str = "nearest"
    noise_bits: int = 8

    def __post_init__(self):
        if self.mantissa_bits < 1:
            raise ValueError("mantissa_bits must be >= 1")
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if self.exponent_bits is not None and self.exponent_bits < 1:
            raise ValueError("exponent_bits must be >= 1 or None")

    def with_mantissa(self, mantissa_bits: int) -> "BFPConfig":
        """Return a copy of this configuration with a different mantissa width."""
        return BFPConfig(
            mantissa_bits=mantissa_bits,
            group_size=self.group_size,
            exponent_bits=self.exponent_bits,
            rounding=self.rounding,
            noise_bits=self.noise_bits,
        )

    @property
    def bits_per_value(self) -> float:
        """Average storage bits per value under the chunked layout of Section V-D."""
        exponent_bits = self.exponent_bits if self.exponent_bits is not None else 8
        chunks = (self.mantissa_bits + 1) // 2
        group_bits = exponent_bits + self.group_size * chunks * 3
        return group_bits / self.group_size


def group_values(x: np.ndarray, group_size: int, axis: int = -1):
    """Reshape ``x`` into BFP groups of ``group_size`` along ``axis``.

    Returns ``(groups, pad, moved_shape)`` where ``groups`` has shape
    ``(n_rows, n_groups, group_size)``, ``pad`` is the number of zero values
    appended to make the grouped axis divisible by ``group_size``, and
    ``moved_shape`` is the shape after moving ``axis`` to the end (needed to
    undo the transformation).

    The floating dtype of ``x`` is preserved (integer inputs are promoted to
    float64), and when the grouped axis is contiguous and already divisible by
    ``group_size`` the returned ``groups`` is a view of ``x`` -- treat it as
    read-only.
    """
    return kernels.group_for_quantization(x, group_size, axis=axis)


def ungroup_values(groups: np.ndarray, pad: int, moved_shape, axis: int = -1) -> np.ndarray:
    """Invert :func:`group_values`, restoring the original array layout."""
    rows = groups.reshape(groups.shape[0], -1)
    if pad:
        rows = rows[:, :-pad]
    moved = rows.reshape(moved_shape)
    return np.moveaxis(moved, -1, axis)


def compute_group_exponents(groups: np.ndarray, exponent_bits: Optional[int] = None) -> np.ndarray:
    """Compute the shared exponent of each group (Figure 4a).

    The shared exponent is ``floor(log2(max |x|))`` over the group, derived
    exactly from the float representation via ``np.frexp`` (see
    :func:`repro.core.kernels.shared_exponents`).  All-zero groups receive
    :data:`MIN_EXPONENT`.  When ``exponent_bits`` is given the exponents are
    clamped to a window of ``2**exponent_bits`` values anchored at the
    tensor-wide maximum.
    """
    return kernels.shared_exponents(groups, exponent_bits)


def bfp_quantize(
    x,
    mantissa_bits: int = 4,
    group_size: int = 16,
    exponent_bits: Optional[int] = 8,
    rounding: str = "nearest",
    axis: int = -1,
    rng=None,
    noise_bits: int = 8,
    layout=None,
) -> np.ndarray:
    """Fake-quantize ``x`` onto the BFP grid and return an FP array.

    This is the ``BFP(X, m)`` function of Algorithm 1.  The output has the
    same shape and dtype-family as the input but every value is exactly
    representable in the requested BFP format.  Dispatches to the fused
    fast-path kernel (:func:`repro.core.kernels.bfp_quantize_fast`), which is
    bit-compatible with the seed reference implementation wherever the old
    ``floor(log2)`` exponent derivation was correct -- on values one ulp
    below a power of two the frexp-based kernel is strictly more accurate
    (the rounded log2 landed on the wrong integer there).

    ``layout`` optionally passes a precomputed
    :class:`~repro.core.kernels.GroupedLayout` (see
    :class:`~repro.core.kernels.LayoutCache`); quantized layers keep one per
    tensor so repeated conversions skip layout re-derivation entirely.
    """
    return kernels.bfp_quantize_fast(
        x,
        mantissa_bits=mantissa_bits,
        group_size=group_size,
        exponent_bits=exponent_bits,
        rounding=rounding,
        axis=axis,
        rng=rng,
        noise_bits=noise_bits,
        layout=layout,
    )


@dataclass
class BFPTensor:
    """Packed BFP representation of a tensor.

    Attributes
    ----------
    signs:
        ``int8`` array of ``{-1, 0, +1}`` with shape ``(rows, groups, g)``.
    mantissas:
        Unsigned mantissa magnitudes (``int64``) with the same shape.
    exponents:
        Shared exponent per group with shape ``(rows, groups)``.
    config:
        The :class:`BFPConfig` used to produce the tensor.
    shape:
        Original (unquantized) tensor shape.
    axis:
        Axis along which grouping was performed.
    pad:
        Number of zero-padded values in the last group of each row.
    """

    signs: np.ndarray
    mantissas: np.ndarray
    exponents: np.ndarray
    config: BFPConfig
    shape: tuple
    axis: int = -1
    pad: int = 0
    _moved_shape: tuple = field(default=None, repr=False)

    def __post_init__(self):
        if _SANITIZER is not None:
            _SANITIZER.check_bfp_tensor(self)

    @property
    def group_size(self) -> int:
        return self.config.group_size

    @property
    def mantissa_bits(self) -> int:
        return self.config.mantissa_bits

    @property
    def num_groups(self) -> int:
        return int(self.exponents.size)

    @property
    def num_values(self) -> int:
        return int(np.prod(self.shape))

    def to_float(self) -> np.ndarray:
        """Dequantize back to floating point (values on the BFP grid).

        Scaling goes through ``np.ldexp`` rather than multiplying by
        ``2.0**k``: for deep-subnormal shared exponents the scale itself
        underflows to zero while ``mantissa * 2**k`` is still representable,
        and ldexp computes that product exactly (matching the fast
        quantization kernel).
        """
        values = self.signs.astype(np.float64) * self.mantissas.astype(np.float64)
        shift = (self.exponents - (self.mantissa_bits - 1)).astype(np.int32)
        values = np.ldexp(values, shift[..., None])
        result = ungroup_values(values, self.pad, self._moved_shape, axis=self.axis)
        return result.reshape(self.shape)

    def storage_bits(self) -> int:
        """Total storage bits under the chunked memory layout of Section V-D."""
        exponent_bits = self.config.exponent_bits if self.config.exponent_bits is not None else 8
        chunks = (self.mantissa_bits + 1) // 2
        per_group = exponent_bits + self.group_size * chunks * 3
        return per_group * self.num_groups

    def bits_per_value(self) -> float:
        """Average storage bits per (unpadded) value."""
        return self.storage_bits() / self.num_values


def bfp_quantize_tensor(
    x,
    config: Optional[BFPConfig] = None,
    rng=None,
    axis: int = -1,
    **overrides,
) -> BFPTensor:
    """Quantize ``x`` into a packed :class:`BFPTensor`.

    Either pass a :class:`BFPConfig` or keyword overrides (``mantissa_bits``,
    ``group_size``, ``exponent_bits``, ``rounding``, ``noise_bits``).
    """
    if config is None:
        config = BFPConfig(**overrides)
    elif overrides:
        params = {
            "mantissa_bits": config.mantissa_bits,
            "group_size": config.group_size,
            "exponent_bits": config.exponent_bits,
            "rounding": config.rounding,
            "noise_bits": config.noise_bits,
        }
        params.update(overrides)
        config = BFPConfig(**params)

    x = np.asarray(x)
    groups, pad, moved_shape = kernels.resolve_groups(x, config.group_size, axis=axis)
    exponents = compute_group_exponents(groups, config.exponent_bits)
    _, signs, mantissas = kernels.quantize_groups(
        groups,
        exponents,
        config.mantissa_bits,
        config.rounding,
        rng=rng,
        noise_bits=config.noise_bits,
        return_packed=True,
    )
    return BFPTensor(
        signs=signs,
        mantissas=mantissas,
        exponents=exponents,
        config=config,
        shape=tuple(x.shape) if x.ndim else (1,),
        axis=axis,
        pad=pad,
        _moved_shape=moved_shape,
    )
