"""BFP memory layout model (Section V-D, Figure 15).

The FAST system stores the shared exponent and the mantissas of a BFP group
separately.  Mantissas are split into 2-bit chunks, and the k-th chunks of
all mantissas in a group are packed into the same memory word so that one
fMAC pass can stream one word per group.  Each mantissa also carries a sign
bit, so a 2-bit chunk occupies 3 stored bits.

Total bits per group: ``e + g * (m / 2) * 3``.  With the paper's hardware
parameters (``e = 3``, ``g = 16``) this gives 3.19 bits per value for m=2 and
6.19 bits per value for m=4 (reported as "3.2" and "6.2" in the paper).

This module provides the bit accounting used by the SRAM sizing model and a
functional pack/unpack pair that mirrors the word layout, which the tests use
to check that the layout is lossless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .bfp import BFPConfig, BFPTensor
from .chunks import decompose_mantissas, reconstruct_mantissas

__all__ = [
    "BFPMemoryLayout",
    "bits_per_group",
    "bits_per_value",
    "pack_group",
    "unpack_group",
    "compact_bfp_arrays",
    "restore_bfp_tensor",
]


def bits_per_group(exponent_bits: int, group_size: int, mantissa_bits: int, chunk_bits: int = 2) -> int:
    """Storage bits for one BFP group under the chunked layout."""
    chunks = -(-mantissa_bits // chunk_bits)
    return exponent_bits + group_size * chunks * (chunk_bits + 1)


def bits_per_value(exponent_bits: int, group_size: int, mantissa_bits: int, chunk_bits: int = 2) -> float:
    """Average storage bits per value (the 3.2 / 6.2 figures of Section V-D)."""
    return bits_per_group(exponent_bits, group_size, mantissa_bits, chunk_bits) / group_size


def pack_group(
    signs: np.ndarray,
    mantissas: np.ndarray,
    exponent: int,
    mantissa_bits: int,
    chunk_bits: int = 2,
) -> Dict[str, object]:
    """Pack one BFP group into the word-oriented layout of Figure 15.

    Returns a dictionary with the exponent entry and a list of mantissa-memory
    words, one per chunk position.  Each word is a list of ``(sign_bit,
    chunk_value)`` pairs in group order, matching how the hardware streams a
    chunk of every mantissa in one access.
    """
    signs = np.asarray(signs).reshape(-1)
    mantissas = np.asarray(mantissas).reshape(-1)
    if signs.shape != mantissas.shape:
        raise ValueError("signs and mantissas must have the same length")
    chunks, offsets = decompose_mantissas(mantissas, mantissa_bits, chunk_bits)
    sign_bits = (signs < 0).astype(np.int64)
    words: List[List[Tuple[int, int]]] = []
    for k in range(chunks.shape[0]):
        words.append([(int(sign_bits[j]), int(chunks[k, j])) for j in range(signs.size)])
    return {
        "exponent": int(exponent),
        "words": words,
        "offsets": offsets,
        "mantissa_bits": mantissa_bits,
        "chunk_bits": chunk_bits,
    }


def unpack_group(packed: Dict[str, object]) -> Tuple[np.ndarray, np.ndarray, int]:
    """Invert :func:`pack_group`, returning ``(signs, mantissas, exponent)``."""
    words = packed["words"]
    chunk_bits = packed["chunk_bits"]
    group_size = len(words[0])
    chunk_array = np.array([[pair[1] for pair in word] for word in words], dtype=np.int64)
    mantissas = reconstruct_mantissas(chunk_array, chunk_bits)
    sign_bits = np.array([pair[0] for pair in words[0]], dtype=np.int64)
    signs = np.where(sign_bits == 1, -1, 1).astype(np.int8)
    signs = np.where(mantissas == 0, 0, signs).astype(np.int8)
    assert len(signs) == group_size
    return signs, mantissas, int(packed["exponent"])


def compact_bfp_arrays(tensor: BFPTensor) -> Dict[str, np.ndarray]:
    """Smallest integer arrays that losslessly hold a packed :class:`BFPTensor`.

    The serving checkpoint format stores these three arrays per quantized
    weight instead of the dequantized floats: signs fit ``int8``, mantissa
    magnitudes fit ``uint8``/``uint16`` (``m`` bits each), and shared
    exponents fit ``int16`` (FP32-range exponents).  Together with the group
    geometry recorded by the caller this is exactly the information content
    of the Figure 15 layout, one word-sized array per field.
    """
    mantissa_dtype = np.uint8 if tensor.mantissa_bits <= 8 else np.uint16
    exponents = tensor.exponents
    if exponents.min() < np.iinfo(np.int16).min or exponents.max() > np.iinfo(np.int16).max:
        raise ValueError("shared exponents exceed the int16 storage range")
    return {
        "signs": tensor.signs.astype(np.int8, copy=False),
        "mantissas": tensor.mantissas.astype(mantissa_dtype),
        "exponents": exponents.astype(np.int16),
    }


def restore_bfp_tensor(
    arrays: Dict[str, np.ndarray],
    config: BFPConfig,
    shape,
    axis: int,
    pad: int,
    moved_shape,
) -> BFPTensor:
    """Rebuild a :class:`BFPTensor` from :func:`compact_bfp_arrays` output."""
    return BFPTensor(
        signs=np.asarray(arrays["signs"], dtype=np.int8),
        mantissas=np.asarray(arrays["mantissas"], dtype=np.int64),
        exponents=np.asarray(arrays["exponents"], dtype=np.int64),
        config=config,
        shape=tuple(int(s) for s in shape),
        axis=int(axis),
        pad=int(pad),
        _moved_shape=tuple(int(s) for s in moved_shape),
    )


@dataclass
class BFPMemoryLayout:
    """Bit-level storage accounting for BFP tensors.

    Parameters mirror the hardware configuration of Section V-D: a 3-bit
    shared exponent, group size 16 and 2-bit mantissa chunks.
    """

    exponent_bits: int = 3
    group_size: int = 16
    chunk_bits: int = 2

    def group_bits(self, mantissa_bits: int) -> int:
        return bits_per_group(self.exponent_bits, self.group_size, mantissa_bits, self.chunk_bits)

    def value_bits(self, mantissa_bits: int) -> float:
        return bits_per_value(self.exponent_bits, self.group_size, mantissa_bits, self.chunk_bits)

    def tensor_bits(self, num_values: int, mantissa_bits: int) -> int:
        """Storage bits for ``num_values`` values (padded to whole groups)."""
        groups = -(-num_values // self.group_size)
        return groups * self.group_bits(mantissa_bits)

    def tensor_bytes(self, num_values: int, mantissa_bits: int) -> float:
        return self.tensor_bits(num_values, mantissa_bits) / 8.0

    def pack_tensor(self, tensor: BFPTensor) -> List[Dict[str, object]]:
        """Pack every group of a :class:`BFPTensor` into memory words.

        The chunk decomposition runs once over the whole tensor instead of
        once per group; the per-group word lists are then assembled from the
        C-level ``tolist`` conversions, avoiding per-element ``int()`` calls.
        """
        signs = tensor.signs.reshape(-1, tensor.group_size)
        mantissas = tensor.mantissas.reshape(-1, tensor.group_size)
        exponents = tensor.exponents.reshape(-1)
        chunks, offsets = decompose_mantissas(mantissas, tensor.mantissa_bits, self.chunk_bits)
        num_chunks = chunks.shape[0]
        sign_rows = (signs < 0).astype(np.int64).tolist()
        chunk_rows = [chunks[k].tolist() for k in range(num_chunks)]
        exponent_list = exponents.tolist()
        packed = []
        for index in range(exponents.size):
            sign_row = sign_rows[index]
            words = [list(zip(sign_row, chunk_rows[k][index])) for k in range(num_chunks)]
            packed.append(
                {
                    "exponent": exponent_list[index],
                    "words": words,
                    "offsets": list(offsets),
                    "mantissa_bits": tensor.mantissa_bits,
                    "chunk_bits": self.chunk_bits,
                }
            )
        return packed
