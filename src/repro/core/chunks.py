"""Mantissa chunk decomposition for variable-precision fMAC operation.

The fMAC (Section V-B, Figure 13) operates on fixed-width chunks of the BFP
mantissas -- 2 bits in the paper.  An ``m``-bit mantissa is split into
``m / 2`` chunks from most significant to least significant; the k-th chunk
carries an implicit exponent offset of ``-2 * k`` relative to the group's
shared exponent, applied by the BFP converter so that the fMAC itself stays
agnostic to chunk position.

Multiplying a pair of BFP groups with ``mx``-bit and ``my``-bit mantissas
therefore takes ``(mx / 2) * (my / 2)`` fMAC passes, which is the mechanism
behind FAST's variable-precision speedup.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "decompose_mantissas",
    "reconstruct_mantissas",
    "num_chunks",
    "passes_required",
]

#: Width of the mantissa chunks processed by one fMAC pass.
DEFAULT_CHUNK_BITS = 2


def num_chunks(mantissa_bits: int, chunk_bits: int = DEFAULT_CHUNK_BITS) -> int:
    """Number of chunks needed to hold an ``mantissa_bits``-wide mantissa."""
    if mantissa_bits < 1:
        raise ValueError("mantissa_bits must be >= 1")
    if chunk_bits < 1:
        raise ValueError("chunk_bits must be >= 1")
    return -(-mantissa_bits // chunk_bits)


def passes_required(
    mantissa_bits_a: int,
    mantissa_bits_b: int,
    chunk_bits: int = DEFAULT_CHUNK_BITS,
) -> int:
    """fMAC passes needed to multiply two mantissas of the given widths.

    For the paper's 2-bit chunks: (2, 2) -> 1 pass, (4, 2) -> 2 passes,
    (4, 4) -> 4 passes.
    """
    return num_chunks(mantissa_bits_a, chunk_bits) * num_chunks(mantissa_bits_b, chunk_bits)


def decompose_mantissas(
    mantissas: np.ndarray,
    mantissa_bits: int,
    chunk_bits: int = DEFAULT_CHUNK_BITS,
):
    """Split unsigned mantissas into chunks, most significant chunk first.

    Parameters
    ----------
    mantissas:
        Array of unsigned mantissa magnitudes, each ``< 2**mantissa_bits``.
    mantissa_bits:
        Width of the mantissas being decomposed.
    chunk_bits:
        Width of each chunk (2 in the paper).

    Returns
    -------
    chunks:
        Integer array with a new leading axis of length ``num_chunks``; entry
        ``chunks[k]`` holds the k-th most significant chunk of every mantissa.
    offsets:
        List of exponent offsets (``0, -chunk_bits, -2*chunk_bits, ...``), one
        per chunk, to be applied by the BFP converter.
    """
    mantissas = np.asarray(mantissas, dtype=np.int64)
    if mantissas.size and mantissas.min() < 0:
        raise ValueError("mantissas must be unsigned magnitudes")
    if mantissas.size and mantissas.max() >= (1 << mantissa_bits):
        raise ValueError(
            f"mantissa value {int(mantissas.max())} does not fit in {mantissa_bits} bits"
        )
    count = num_chunks(mantissa_bits, chunk_bits)
    total_bits = count * chunk_bits
    chunk_mask = (1 << chunk_bits) - 1
    # One broadcast shift extracts every chunk of every mantissa at once
    # (most significant chunk first).
    shifts = total_bits - (np.arange(count, dtype=np.int64) + 1) * chunk_bits
    shifts = shifts.reshape((count,) + (1,) * mantissas.ndim)
    chunks = (mantissas[None, ...] >> shifts) & chunk_mask
    offsets = [-(k * chunk_bits) for k in range(count)]
    return chunks, offsets


def reconstruct_mantissas(
    chunks: np.ndarray,
    chunk_bits: int = DEFAULT_CHUNK_BITS,
) -> np.ndarray:
    """Reassemble mantissas from chunks produced by :func:`decompose_mantissas`."""
    chunks = np.asarray(chunks, dtype=np.int64)
    count = chunks.shape[0]
    shifts = (np.arange(count - 1, -1, -1, dtype=np.int64) * chunk_bits)
    shifts = shifts.reshape((count,) + (1,) * (chunks.ndim - 1))
    return np.bitwise_or.reduce(chunks << shifts, axis=0)
