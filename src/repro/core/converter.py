"""Software model of the BFP converter (Figure 14).

The converter takes a group of FP values and produces BFP values following
the pipeline of Figure 4: max-exponent search (comparator tree), mantissa
alignment (barrel shifters), stochastic noise injection (LFSR) and
truncation.  It also computes the relative-improvement statistic ``r(X)``
(Equation 2) that Algorithm 1 uses to choose between the 2-bit and 4-bit
mantissa, because in hardware that statistic is produced as a by-product of
conversion.

All outputs of the hardware converter are stored with 4-bit mantissas split
into two 2-bit chunks; when the policy selects 2 bits the low-order chunk is
simply discarded (Section V-D).  The software model mirrors that by exposing
both precisions from a single conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import kernels
from .bfp import BFPConfig, bfp_quantize_tensor, BFPTensor

__all__ = ["ConversionResult", "BFPConverter", "relative_improvement"]


def relative_improvement(x, config: Optional[BFPConfig] = None, low_bits: int = 2, high_bits: int = 4) -> float:
    """Relative improvement ``r(X)`` of high- over low-precision BFP (Eq. 2).

    ``r(X) = sum_n |BFP(X_n, high) - BFP(X_n, low)| / sum_n |BFP(X_n, low)|``

    A small value means the extra mantissa bits barely change the quantized
    tensor, so the cheaper low-precision format is good enough; a large value
    means low precision is losing significant information.

    The shared exponents do not depend on the mantissa width, so the grouping
    and exponent derivation are done once and reused for both precisions --
    this function runs on every FAST-Adaptive precision decision, making it a
    hot path in its own right.  Padded positions quantize to zero at both
    precisions and therefore do not perturb either sum.
    """
    if config is None:
        config = BFPConfig()
    x = np.asarray(x, dtype=np.float64)
    groups, _, _ = kernels.resolve_groups(x, config.group_size, axis=-1)
    exponents = kernels.shared_exponents(groups, config.exponent_bits)
    low, _, _ = kernels.quantize_groups(groups, exponents, low_bits, "nearest")
    high, _, _ = kernels.quantize_groups(groups, exponents, high_bits, "nearest")
    denominator = float(np.abs(low).sum())
    numerator = float(np.abs(high - low).sum())
    if denominator == 0.0:
        # An all-zero low-precision tensor means everything was truncated
        # away; any non-zero difference is an infinite relative improvement.
        return float("inf") if numerator > 0.0 else 0.0
    return numerator / denominator


@dataclass
class ConversionResult:
    """Output of one :class:`BFPConverter` invocation."""

    quantized: np.ndarray
    packed: BFPTensor
    relative_improvement: float
    mantissa_bits: int


class BFPConverter:
    """FP32 -> BFP conversion unit with relative-improvement computation.

    Parameters
    ----------
    config:
        Base :class:`BFPConfig` (group size, exponent width, rounding mode).
    low_bits, high_bits:
        The two mantissa precisions supported by Algorithm 1 (2 and 4 bits in
        the paper).
    rng:
        Random source used when ``config.rounding == "stochastic"``.
    """

    def __init__(
        self,
        config: Optional[BFPConfig] = None,
        low_bits: int = 2,
        high_bits: int = 4,
        rng=None,
    ):
        self.config = config if config is not None else BFPConfig()
        if low_bits >= high_bits:
            raise ValueError("low_bits must be strictly smaller than high_bits")
        self.low_bits = low_bits
        self.high_bits = high_bits
        self.rng = rng if rng is not None else np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng

    def convert(self, x, mantissa_bits: Optional[int] = None, axis: int = -1) -> ConversionResult:
        """Convert ``x`` to BFP with the requested (or configured) mantissa width."""
        bits = mantissa_bits if mantissa_bits is not None else self.config.mantissa_bits
        cfg = self.config.with_mantissa(bits)
        packed = bfp_quantize_tensor(x, config=cfg, rng=self.rng, axis=axis)
        quantized = packed.to_float()
        r_value = relative_improvement(x, self.config, self.low_bits, self.high_bits)
        return ConversionResult(
            quantized=quantized,
            packed=packed,
            relative_improvement=r_value,
            mantissa_bits=bits,
        )

    def convert_adaptive(self, x, threshold: float, axis: int = -1) -> ConversionResult:
        """Convert ``x`` choosing the mantissa width per Algorithm 1.

        If the relative improvement of the high-precision format is below
        ``threshold`` the low-precision mantissa is used; otherwise the
        high-precision one.
        """
        r_value = relative_improvement(x, self.config, self.low_bits, self.high_bits)
        bits = self.low_bits if r_value < threshold else self.high_bits
        cfg = self.config.with_mantissa(bits)
        packed = bfp_quantize_tensor(x, config=cfg, rng=self.rng, axis=axis)
        return ConversionResult(
            quantized=packed.to_float(),
            packed=packed,
            relative_improvement=r_value,
            mantissa_bits=bits,
        )
