"""The paper's primary contribution: variable precision BFP with stochastic rounding."""

from .bfp import (
    MIN_EXPONENT,
    BFPConfig,
    BFPTensor,
    bfp_quantize,
    bfp_quantize_tensor,
    compute_group_exponents,
    group_values,
    ungroup_values,
)
from .chunks import decompose_mantissas, num_chunks, passes_required, reconstruct_mantissas
from .converter import BFPConverter, ConversionResult, relative_improvement
from .memory_layout import BFPMemoryLayout, bits_per_group, bits_per_value, pack_group, unpack_group
from .precision_policy import (
    SETTING_ORDER,
    TENSOR_KINDS,
    FASTAdaptivePolicy,
    FixedPrecisionPolicy,
    LayerwisePrecisionPolicy,
    PrecisionDecision,
    PrecisionPolicy,
    TemporalPrecisionPolicy,
    fast_threshold,
    setting_cost_rank,
)
from .rounding import LFSR, RoundingMode, apply_rounding, round_nearest, round_stochastic, round_truncate

__all__ = [
    "BFPConfig",
    "BFPTensor",
    "bfp_quantize",
    "bfp_quantize_tensor",
    "compute_group_exponents",
    "group_values",
    "ungroup_values",
    "MIN_EXPONENT",
    "decompose_mantissas",
    "reconstruct_mantissas",
    "num_chunks",
    "passes_required",
    "BFPConverter",
    "ConversionResult",
    "relative_improvement",
    "BFPMemoryLayout",
    "bits_per_group",
    "bits_per_value",
    "pack_group",
    "unpack_group",
    "PrecisionPolicy",
    "PrecisionDecision",
    "FixedPrecisionPolicy",
    "TemporalPrecisionPolicy",
    "LayerwisePrecisionPolicy",
    "FASTAdaptivePolicy",
    "fast_threshold",
    "setting_cost_rank",
    "SETTING_ORDER",
    "TENSOR_KINDS",
    "LFSR",
    "RoundingMode",
    "apply_rounding",
    "round_nearest",
    "round_truncate",
    "round_stochastic",
]
