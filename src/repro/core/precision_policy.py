"""Precision policies: how the BFP mantissa width evolves during training.

The paper studies several schedules (Section IV):

* fixed precision throughout training (LowBFP / MidBFP / HighBFP baselines),
* *temporal* schedules that switch precision at the halfway point of training
  (Low-to-High and High-to-Low, Figure 9 left),
* *layerwise* schedules that use different precisions for the first and
  second halves of the network (Figure 9 right),
* the FAST-Adaptive policy (Algorithm 1) that picks 2- or 4-bit mantissas per
  tensor, per layer and per iteration by comparing the relative improvement
  ``r(X)`` against the decaying threshold ``ε(l, i)`` of Equation 1.

Every policy implements :meth:`PrecisionPolicy.select`, which maps
``(tensor_kind, layer_index, iteration, tensor)`` to a mantissa bitwidth, so
trainers and benchmarks can swap policies freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .bfp import BFPConfig
from .converter import relative_improvement

__all__ = [
    "fast_threshold",
    "PrecisionDecision",
    "PrecisionPolicy",
    "FixedPrecisionPolicy",
    "TemporalPrecisionPolicy",
    "LayerwisePrecisionPolicy",
    "FASTAdaptivePolicy",
    "TENSOR_KINDS",
    "SETTING_ORDER",
    "setting_cost_rank",
]

#: The three tensor kinds whose precision is selected independently.
TENSOR_KINDS = ("weight", "activation", "gradient")

#: The eight (W, A, G) precision settings of Figure 17, ordered by the
#: computational cost of deploying them on the FAST system (cheapest first).
#: Gradients participate in two of the three matrix products of the backward
#: pass, so raising the gradient precision costs slightly more than raising
#: the weight or activation precision (Section VI-A).
SETTING_ORDER: Tuple[Tuple[int, int, int], ...] = (
    (2, 2, 2),
    (2, 4, 2),
    (4, 2, 2),
    (2, 2, 4),
    (4, 4, 2),
    (2, 4, 4),
    (4, 2, 4),
    (4, 4, 4),
)


def setting_cost_rank(weight_bits: int, activation_bits: int, gradient_bits: int) -> int:
    """Rank of a (W, A, G) precision setting in :data:`SETTING_ORDER`."""
    setting = (weight_bits, activation_bits, gradient_bits)
    try:
        return SETTING_ORDER.index(setting)
    except ValueError as exc:
        raise ValueError(f"unknown precision setting {setting}") from exc


def fast_threshold(
    layer_index: int,
    iteration: int,
    total_layers: int,
    total_iterations: int,
    alpha: float = 0.6,
    beta: float = 0.3,
) -> float:
    """The FAST threshold ``ε(l, i) = α − β·i/I − β·l/L`` (Equation 1).

    The threshold decreases with both training progress and layer depth, so
    high precision is adopted first by the deepest layers late in training.
    """
    if total_layers <= 0 or total_iterations <= 0:
        raise ValueError("total_layers and total_iterations must be positive")
    return alpha - beta * (iteration / total_iterations) - beta * (layer_index / total_layers)


@dataclass
class PrecisionDecision:
    """Record of one precision choice, used for the Figure 17 visualization."""

    layer_index: int
    iteration: int
    tensor_kind: str
    mantissa_bits: int
    relative_improvement: Optional[float] = None
    threshold: Optional[float] = None


class PrecisionPolicy:
    """Base class for precision policies.

    Subclasses implement :meth:`decide`, which maps ``(tensor_kind,
    layer_index, iteration, tensor)`` to a :class:`PrecisionDecision`
    *without* appending to :attr:`history`.  Keeping the decision function
    side-effect-free is what lets quantized layers fold the chosen bits into
    their weight-cache key: the bits for a given ``(kind, layer, iteration,
    tensor)`` can be (re)computed at cache-lookup time, and recording happens
    exactly once per quantize call via :meth:`select`.
    """

    #: Mantissa widths this policy may return (used by cost models).
    supported_bits: Tuple[int, ...] = (2, 4)

    def __init__(self):
        self.history: List[PrecisionDecision] = []

    def decide(self, tensor_kind: str, layer_index: int, iteration: int,
               tensor=None) -> PrecisionDecision:
        """Choose the mantissa bitwidth for the given tensor (no recording)."""
        raise NotImplementedError

    def select(self, tensor_kind: str, layer_index: int, iteration: int, tensor=None) -> int:
        """Return the mantissa bitwidth for the given tensor and record it."""
        decision = self.decide(tensor_kind, layer_index, iteration, tensor=tensor)
        self.record(decision)
        return decision.mantissa_bits

    def record(self, decision: PrecisionDecision) -> None:
        self.history.append(decision)

    def setting_history(self) -> Dict[Tuple[int, int], Tuple[int, int, int]]:
        """Collapse the decision history into ``(layer, iteration) -> (W, A, G)``."""
        table: Dict[Tuple[int, int], Dict[str, int]] = {}
        for decision in self.history:
            key = (decision.layer_index, decision.iteration)
            table.setdefault(key, {})[decision.tensor_kind] = decision.mantissa_bits
        result = {}
        for key, kinds in table.items():
            if all(kind in kinds for kind in TENSOR_KINDS):
                result[key] = (kinds["weight"], kinds["activation"], kinds["gradient"])
        return result


class FixedPrecisionPolicy(PrecisionPolicy):
    """Always use the same mantissa width (LowBFP / MidBFP / HighBFP)."""

    def __init__(self, mantissa_bits: int):
        super().__init__()
        self.mantissa_bits = mantissa_bits
        self.supported_bits = (mantissa_bits,)

    def decide(self, tensor_kind: str, layer_index: int, iteration: int,
               tensor=None) -> PrecisionDecision:
        return PrecisionDecision(layer_index, iteration, tensor_kind, self.mantissa_bits)


class TemporalPrecisionPolicy(PrecisionPolicy):
    """Switch precision at a fraction of training (Figure 9, left).

    ``low_to_high=True`` reproduces the Temporal Low-to-High scheme (low
    precision early, high precision late); ``False`` gives High-to-Low.
    """

    def __init__(
        self,
        total_iterations: int,
        low_bits: int = 2,
        high_bits: int = 4,
        switch_fraction: float = 0.5,
        low_to_high: bool = True,
    ):
        super().__init__()
        if not 0.0 < switch_fraction < 1.0:
            raise ValueError("switch_fraction must be in (0, 1)")
        self.total_iterations = total_iterations
        self.low_bits = low_bits
        self.high_bits = high_bits
        self.switch_fraction = switch_fraction
        self.low_to_high = low_to_high
        self.supported_bits = (low_bits, high_bits)

    def decide(self, tensor_kind: str, layer_index: int, iteration: int,
               tensor=None) -> PrecisionDecision:
        progress = iteration / self.total_iterations
        in_second_half = progress >= self.switch_fraction
        if self.low_to_high:
            bits = self.high_bits if in_second_half else self.low_bits
        else:
            bits = self.low_bits if in_second_half else self.high_bits
        return PrecisionDecision(layer_index, iteration, tensor_kind, bits)


class LayerwisePrecisionPolicy(PrecisionPolicy):
    """Use different precisions for the shallow and deep halves of the network.

    ``low_to_high=True`` reproduces Layerwise Low-to-High (low precision in
    the early layers, high precision in the later layers, Figure 9 right).
    """

    def __init__(
        self,
        total_layers: int,
        low_bits: int = 2,
        high_bits: int = 4,
        switch_fraction: float = 0.5,
        low_to_high: bool = True,
    ):
        super().__init__()
        if total_layers <= 0:
            raise ValueError("total_layers must be positive")
        self.total_layers = total_layers
        self.low_bits = low_bits
        self.high_bits = high_bits
        self.switch_fraction = switch_fraction
        self.low_to_high = low_to_high
        self.supported_bits = (low_bits, high_bits)

    def decide(self, tensor_kind: str, layer_index: int, iteration: int,
               tensor=None) -> PrecisionDecision:
        depth_fraction = layer_index / self.total_layers
        in_deep_half = depth_fraction >= self.switch_fraction
        if self.low_to_high:
            bits = self.high_bits if in_deep_half else self.low_bits
        else:
            bits = self.low_bits if in_deep_half else self.high_bits
        return PrecisionDecision(layer_index, iteration, tensor_kind, bits)


class FASTAdaptivePolicy(PrecisionPolicy):
    """The FAST-Adaptive precision policy (Algorithm 1).

    For each tensor ``X`` in ``{A_l, W_l, G_l}`` of every layer ``l`` at every
    iteration ``i``, compute the relative improvement ``r(X)`` of the 4-bit
    mantissa over the 2-bit one and compare it with the threshold
    ``ε(l, i)``: below the threshold the tensor stays at 2 bits, otherwise it
    is promoted to 4 bits.

    Parameters
    ----------
    total_layers, total_iterations:
        ``L`` and ``I`` of Equation 1.
    alpha, beta:
        Threshold hyperparameters (0.6 and 0.3 in the paper's experiments).
    config:
        BFP configuration (group size and exponent width) used when
        evaluating ``r(X)``.
    evaluation_interval:
        Recompute ``r(X)`` every this many iterations and reuse the cached
        decision in between.  The paper recomputes every iteration in
        hardware (where the statistic is free); software callers typically
        want a coarser interval.
    """

    def __init__(
        self,
        total_layers: int,
        total_iterations: int,
        alpha: float = 0.6,
        beta: float = 0.3,
        low_bits: int = 2,
        high_bits: int = 4,
        config: Optional[BFPConfig] = None,
        evaluation_interval: int = 1,
    ):
        super().__init__()
        if total_layers <= 0 or total_iterations <= 0:
            raise ValueError("total_layers and total_iterations must be positive")
        if evaluation_interval < 1:
            raise ValueError("evaluation_interval must be >= 1")
        self.total_layers = total_layers
        self.total_iterations = total_iterations
        self.alpha = alpha
        self.beta = beta
        self.low_bits = low_bits
        self.high_bits = high_bits
        self.config = config if config is not None else BFPConfig()
        self.evaluation_interval = evaluation_interval
        self.supported_bits = (low_bits, high_bits)
        self._cache: Dict[Tuple[str, int], Tuple[int, int, float]] = {}

    def threshold(self, layer_index: int, iteration: int) -> float:
        """Evaluate ``ε(l, i)`` for this policy's hyperparameters."""
        return fast_threshold(
            layer_index,
            iteration,
            self.total_layers,
            self.total_iterations,
            self.alpha,
            self.beta,
        )

    def decide(self, tensor_kind: str, layer_index: int, iteration: int,
               tensor=None) -> PrecisionDecision:
        """Evaluate Algorithm 1 for one tensor without recording the decision.

        Deterministic given ``(tensor_kind, layer_index, iteration, tensor)``:
        the only internal state touched is the ``evaluation_interval`` memo,
        which caches the *same* decision that a fresh evaluation at its
        recorded iteration would produce.  Calling ``decide`` twice for the
        same arguments therefore returns identical bits, which is what lets
        quantized layers consult it from their weight-cache key.
        """
        if tensor is None:
            raise ValueError("FASTAdaptivePolicy.decide requires the tensor values")
        key = (tensor_kind, layer_index)
        cached = self._cache.get(key)
        if cached is not None and iteration - cached[0] < self.evaluation_interval:
            bits = cached[1]
            r_value = cached[2]
        else:
            r_value = relative_improvement(
                np.asarray(tensor), self.config, self.low_bits, self.high_bits
            )
            eps = self.threshold(layer_index, iteration)
            bits = self.low_bits if r_value < eps else self.high_bits
            self._cache[key] = (iteration, bits, r_value)
        return PrecisionDecision(
            layer_index,
            iteration,
            tensor_kind,
            bits,
            relative_improvement=r_value,
            threshold=self.threshold(layer_index, iteration),
        )
