"""Rounding primitives used by BFP and fixed-point quantization.

The paper (Section III) relies on three rounding behaviours when mapping
full-precision values onto a low-precision grid:

* ``nearest`` -- conventional round-half-away-from-zero to the closest grid
  point.  Used for weights and activations.
* ``truncate`` -- drop the low-order bits (floor of the magnitude).  This is
  what the alignment/truncation hardware of Figure 4 does when no noise is
  injected.
* ``stochastic`` -- add uniform noise in ``[0, 1)`` (quantized to a small
  number of noise bits in hardware) before truncating.  Theorem 1 shows this
  keeps the expected quantized value equal to the unquantized one, which is
  why the paper applies it to gradients.

All functions operate on *mantissa-scaled* magnitudes: the caller divides the
value by the quantization step so that one unit corresponds to one least
significant mantissa bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RoundingMode",
    "LFSR",
    "round_nearest",
    "round_truncate",
    "round_stochastic",
    "apply_rounding",
    "VALID_MODES",
]


#: The rounding modes accepted throughout the library.
VALID_MODES = ("nearest", "truncate", "stochastic")


class RoundingMode:
    """Symbolic constants for the supported rounding modes."""

    NEAREST = "nearest"
    TRUNCATE = "truncate"
    STOCHASTIC = "stochastic"


class LFSR:
    """A Fibonacci linear feedback shift register noise source.

    The BFP converter of Figure 14 uses an LFSR to produce the random bits
    added to mantissas before truncation.  This software model reproduces a
    maximal-length 16-bit LFSR (taps 16, 15, 13, 4) and exposes a NumPy
    friendly interface for drawing uniform values with a configurable number
    of noise bits, mirroring the ``q = 2**noise_bits`` precision discussed in
    Section III-D.

    Parameters
    ----------
    seed:
        Initial register state.  Must be non-zero; the all-zero state is a
        fixed point of the LFSR.
    width:
        Register width in bits.
    """

    _TAPS = (16, 15, 13, 4)

    def __init__(self, seed: int = 0xACE1, width: int = 16):
        if width < 4:
            raise ValueError("LFSR width must be at least 4 bits")
        self.width = width
        self._mask = (1 << width) - 1
        seed &= self._mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed

    def next_bit(self) -> int:
        """Advance the register by one step and return the output bit."""
        taps = [min(t, self.width) for t in self._TAPS]
        bit = 0
        for tap in taps:
            bit ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | bit) & self._mask
        return bit

    def next_int(self, bits: int) -> int:
        """Return the next ``bits``-wide unsigned integer from the stream."""
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.next_bit()
        return value

    def uniform(self, shape, noise_bits: int = 8) -> np.ndarray:
        """Draw an array of quantized uniform values in ``[0, 1)``.

        Each element is an integer multiple of ``1 / 2**noise_bits``, exactly
        as the hardware adds ``noise_bits`` random bits below the truncation
        point.
        """
        count = int(np.prod(shape)) if shape else 1
        draws = np.array([self.next_int(noise_bits) for _ in range(count)], dtype=np.float64)
        draws /= float(1 << noise_bits)
        return draws.reshape(shape)


def _as_float_array(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def round_nearest(x) -> np.ndarray:
    """Round to the nearest integer, halves away from zero.

    ``np.round`` uses banker's rounding, which is not what fixed-point
    hardware typically implements, so we round half away from zero instead.
    """
    x = _as_float_array(x)
    return np.sign(x) * np.floor(np.abs(x) + 0.5)


def round_truncate(x) -> np.ndarray:
    """Truncate toward zero (drop the fractional bits of the magnitude)."""
    x = _as_float_array(x)
    return np.sign(x) * np.floor(np.abs(x))


def round_stochastic(x, rng=None, noise_bits: int = 8) -> np.ndarray:
    """Stochastically round toward one of the two neighbouring integers.

    A magnitude ``v`` with fractional part ``f`` is rounded up with
    probability ``f`` and down with probability ``1 - f`` (up to the
    resolution of ``noise_bits``), so that ``E[round(v)] == v`` when the noise
    has full precision (Theorem 1 of the paper).

    Parameters
    ----------
    x:
        Values scaled so that the quantization step is one unit.
    rng:
        Either a :class:`numpy.random.Generator`, an :class:`LFSR`, or
        ``None`` (a fresh default generator).
    noise_bits:
        Number of random bits added below the truncation point.  The paper's
        hardware uses 8-bit LFSR streams; its worked example in Figure 4 uses
        three bits (``q = 8``).
    """
    x = _as_float_array(x)
    if rng is None:
        rng = np.random.default_rng()
    if isinstance(rng, LFSR):
        noise = rng.uniform(x.shape, noise_bits=noise_bits)
    else:
        if noise_bits is None:
            noise = rng.random(x.shape)
        else:
            levels = 1 << noise_bits
            noise = rng.integers(0, levels, size=x.shape).astype(np.float64) / levels
    return np.sign(x) * np.floor(np.abs(x) + noise)


def apply_rounding(x, mode: str, rng=None, noise_bits: int = 8) -> np.ndarray:
    """Dispatch to one of the rounding primitives by name.

    Parameters
    ----------
    x:
        Mantissa-scaled values (one unit per least significant bit).
    mode:
        One of ``"nearest"``, ``"truncate"`` or ``"stochastic"``.
    rng, noise_bits:
        Only used by stochastic rounding; see :func:`round_stochastic`.
    """
    if mode == RoundingMode.NEAREST:
        return round_nearest(x)
    if mode == RoundingMode.TRUNCATE:
        return round_truncate(x)
    if mode == RoundingMode.STOCHASTIC:
        return round_stochastic(x, rng=rng, noise_bits=noise_bits)
    raise ValueError(f"unknown rounding mode {mode!r}; expected one of {VALID_MODES}")
