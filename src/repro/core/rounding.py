"""Rounding primitives used by BFP and fixed-point quantization.

The paper (Section III) relies on three rounding behaviours when mapping
full-precision values onto a low-precision grid:

* ``nearest`` -- conventional round-half-away-from-zero to the closest grid
  point.  Used for weights and activations.
* ``truncate`` -- drop the low-order bits (floor of the magnitude).  This is
  what the alignment/truncation hardware of Figure 4 does when no noise is
  injected.
* ``stochastic`` -- add uniform noise in ``[0, 1)`` (quantized to a small
  number of noise bits in hardware) before truncating.  Theorem 1 shows this
  keeps the expected quantized value equal to the unquantized one, which is
  why the paper applies it to gradients.

All functions operate on *mantissa-scaled* magnitudes: the caller divides the
value by the quantization step so that one unit corresponds to one least
significant mantissa bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "RoundingMode",
    "LFSR",
    "VectorizedLFSR",
    "NoisePool",
    "round_nearest",
    "round_truncate",
    "round_stochastic",
    "draw_noise",
    "apply_rounding",
    "VALID_MODES",
]


#: The rounding modes accepted throughout the library.
VALID_MODES = ("nearest", "truncate", "stochastic")


class RoundingMode:
    """Symbolic constants for the supported rounding modes."""

    NEAREST = "nearest"
    TRUNCATE = "truncate"
    STOCHASTIC = "stochastic"


class LFSR:
    """A Fibonacci linear feedback shift register noise source.

    The BFP converter of Figure 14 uses an LFSR to produce the random bits
    added to mantissas before truncation.  This software model reproduces a
    maximal-length 16-bit LFSR (taps 16, 15, 13, 4) and exposes a NumPy
    friendly interface for drawing uniform values with a configurable number
    of noise bits, mirroring the ``q = 2**noise_bits`` precision discussed in
    Section III-D.

    Parameters
    ----------
    seed:
        Initial register state.  Must be non-zero; the all-zero state is a
        fixed point of the LFSR.
    width:
        Register width in bits.
    """

    _TAPS = (16, 15, 13, 4)

    def __init__(self, seed: int = 0xACE1, width: int = 16):
        if width < 4:
            raise ValueError("LFSR width must be at least 4 bits")
        self.width = width
        self._mask = (1 << width) - 1
        seed &= self._mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed
        self._taps = tuple(min(t, width) for t in self._TAPS)
        # XOR-fold the taps into a mask: a position toggled an even number of
        # times cancels, which reproduces the XOR-of-duplicates semantics of
        # the unclamped tap list for narrow registers.
        tap_mask = 0
        for tap in self._taps:
            tap_mask ^= 1 << (tap - 1)
        self._tap_mask = tap_mask

    def next_bit(self) -> int:
        """Advance the register by one step and return the output bit."""
        bit = (self.state & self._tap_mask).bit_count() & 1
        self.state = ((self.state << 1) | bit) & self._mask
        return bit

    def next_int(self, bits: int) -> int:
        """Return the next ``bits``-wide unsigned integer from the stream."""
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.next_bit()
        return value

    def uniform(self, shape, noise_bits: int = 8) -> np.ndarray:
        """Draw an array of quantized uniform values in ``[0, 1)``.

        Each element is an integer multiple of ``1 / 2**noise_bits``, exactly
        as the hardware adds ``noise_bits`` random bits below the truncation
        point.
        """
        count = int(np.prod(shape)) if shape else 1
        draws = np.array([self.next_int(noise_bits) for _ in range(count)], dtype=np.float64)
        draws /= float(1 << noise_bits)
        return draws.reshape(shape)


class VectorizedLFSR(LFSR):
    """Batched LFSR producing the exact bit stream of the scalar :class:`LFSR`.

    The register update is linear over GF(2), so the state after ``k`` steps
    is a fixed bit-matrix applied to the current state.  Matrices are stored
    as one mask per output bit (``out_j = parity(state & mask_j)``), composed
    by XOR-folding, and applied to whole NumPy arrays of register states at
    once.  A :meth:`uniform` draw of ``n`` values therefore costs

    1. one logarithmic doubling phase that materializes the scalar stream's
       register state at the start of every 64-bit block, and
    2. 64 vectorized shift/XOR passes that advance all blocks in lockstep,

    instead of ``n * noise_bits`` Python-level ``next_bit`` calls.  The
    emitted stream -- and the register state left behind -- are bit-identical
    to the scalar reference, which the equivalence tests assert.
    """

    #: Number of sequential steps each parallel register contributes.
    _BLOCK = 64
    #: Below this many bits the scalar path wins; it also guarantees the
    #: vectorized path always has at least ``width`` bits to rebuild the
    #: register from.
    _SMALL = 256

    def __init__(self, seed: int = 0xACE1, width: int = 16):
        if width > 63:
            raise ValueError("VectorizedLFSR supports widths up to 63 bits")
        super().__init__(seed=seed, width=width)
        self._jump_cache = {}

    # ------------------------------------------------------------------ #
    # GF(2) jump matrices (one mask per output bit)
    # ------------------------------------------------------------------ #
    def _step_masks(self):
        """Masks of the single-step map: bit 0 is the feedback, others shift."""
        return [self._tap_mask] + [1 << (j - 1) for j in range(1, self.width)]

    @staticmethod
    def _compose_masks(first, second):
        """Masks of ``second∘first`` (apply ``first``, then ``second``)."""
        combined = []
        for target in second:
            mask = 0
            index = 0
            remaining = int(target)
            while remaining:
                if remaining & 1:
                    mask ^= int(first[index])
                remaining >>= 1
                index += 1
            combined.append(mask)
        return combined

    def _jump_masks(self, steps: int):
        """Masks advancing the register by ``steps`` steps (square-and-multiply)."""
        cached = self._jump_cache.get(steps)
        if cached is not None:
            return cached
        result = None
        power = self._step_masks()
        remaining = steps
        while remaining:
            if remaining & 1:
                result = power if result is None else self._compose_masks(result, power)
            remaining >>= 1
            if remaining:
                power = self._compose_masks(power, power)
        self._jump_cache[steps] = result
        return result

    @staticmethod
    def _apply_masks(masks, states: np.ndarray) -> np.ndarray:
        """Apply a jump to an array of register states."""
        out = np.zeros_like(states)
        for j, mask in enumerate(masks):
            parity = (np.bitwise_count(states & np.uint64(mask)) & 1).astype(np.uint64)
            out |= parity << np.uint64(j)
        return out

    # ------------------------------------------------------------------ #
    # Stream generation
    # ------------------------------------------------------------------ #
    def _stream_words(self, num_blocks: int, consumed: int) -> np.ndarray:
        """Emit ``num_blocks * 64`` stream bits packed MSB-first into uint64 words.

        Only the first ``consumed`` bits count as drawn from the stream: the
        scalar register is rebuilt from bits ``consumed - width .. consumed``
        so that subsequent scalar or vectorized draws continue seamlessly.
        """
        block = self._BLOCK
        # Phase 1: register state at the start of every block, by doubling.
        states = np.zeros(num_blocks, dtype=np.uint64)
        states[0] = self.state
        jump = self._jump_masks(block)
        filled = 1
        while filled < num_blocks:
            take = min(filled, num_blocks - filled)
            states[filled:filled + take] = self._apply_masks(jump, states[:take])
            if filled + take < num_blocks:
                jump = self._compose_masks(jump, jump)
            filled += take
        # Phase 2: advance every block in lockstep, packing the output bits.
        words = np.zeros(num_blocks, dtype=np.uint64)
        mask = np.uint64(self._mask)
        tap_mask = np.uint64(self._tap_mask)
        one = np.uint64(1)
        for _ in range(block):
            feedback = (np.bitwise_count(states & tap_mask) & 1).astype(np.uint64)
            words = (words << one) | feedback
            states = ((states << one) | feedback) & mask
        # The register contents after n >= width steps are exactly the last
        # ``width`` emitted bits (newest at the LSB).
        state = 0
        for t in range(consumed - self.width, consumed):
            word, offset = divmod(t, block)
            state = (state << 1) | ((int(words[word]) >> (block - 1 - offset)) & 1)
        self.state = state
        return words

    def _next_bits(self, count: int) -> np.ndarray:
        """The next ``count`` output bits of the stream as a ``uint8`` array."""
        if count <= 0:
            return np.zeros(0, dtype=np.uint8)
        if count < self._SMALL:
            return np.array([self.next_bit() for _ in range(count)], dtype=np.uint8)
        num_blocks = -(-count // self._BLOCK)
        words = self._stream_words(num_blocks, count)
        shifts = np.arange(self._BLOCK - 1, -1, -1, dtype=np.uint64)
        bits = ((words[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
        return bits.reshape(-1)[:count]

    def uniform(self, shape, noise_bits: int = 8) -> np.ndarray:
        """Vectorized, stream-compatible version of :meth:`LFSR.uniform`."""
        count = int(np.prod(shape)) if shape else 1
        total = count * noise_bits
        if total >= self._SMALL and noise_bits <= self._BLOCK and self._BLOCK % noise_bits == 0:
            # Fast path: extract whole noise values from the packed words.
            num_blocks = -(-total // self._BLOCK)
            words = self._stream_words(num_blocks, total)
            per_word = self._BLOCK // noise_bits
            values = np.empty(num_blocks * per_word, dtype=np.uint64)
            field = np.uint64((1 << noise_bits) - 1)
            for k in range(per_word):
                shift = np.uint64(self._BLOCK - (k + 1) * noise_bits)
                values[k::per_word] = (words >> shift) & field
            draws = values[:count].astype(np.float64)
        else:
            bits = self._next_bits(total)
            weights = np.left_shift(1, np.arange(noise_bits - 1, -1, -1, dtype=np.int64))
            draws = (bits.reshape(count, noise_bits).astype(np.int64) @ weights).astype(np.float64)
        draws /= float(1 << noise_bits)
        return draws.reshape(shape)


class NoisePool:
    """Pooled stochastic-rounding noise drawn in large refill batches.

    The per-call cost of the stochastic path is dominated by noise drawing:
    ``Generator.integers`` produces one int64 per value and the quotient is
    materialized in float64 on every quantize call.  The pool removes that
    bound by refilling a large buffer of ready-to-add noise values in one
    bulk draw (narrow unsigned integers, converted once) and serving
    subsequent :meth:`uniform` calls as zero-copy slices behind a cursor.

    Determinism contract (asserted by ``tests/core/test_noise_pool.py``):

    * the emitted value stream for a fixed ``noise_bits`` is a pure function
      of the seed/source and the *total number of values drawn* -- it does
      not depend on how draws are partitioned into calls, because refills
      always consume the source in fixed ``capacity``-sized blocks;
    * two pools built from equal seeds produce identical streams, so a
      training run is reproducible whether noise is pooled or not (as long
      as both runs pool).

    The pool is *not* stream-compatible with handing the same raw
    ``Generator`` to :func:`draw_noise` call-by-call (it consumes the
    underlying bit stream in a different dtype and cadence); it is a
    distinct, deterministic noise source, exactly like :class:`LFSR`.

    Parameters
    ----------
    source:
        ``None`` (fresh default generator), an integer seed, a
        :class:`numpy.random.Generator` (e.g. built on ``Philox`` for
        counter-based streams), or an :class:`LFSR`/:class:`VectorizedLFSR`.
    capacity:
        Number of noise values per refill batch (per ``noise_bits`` stream).
    """

    def __init__(self, source=None, capacity: int = 1 << 20):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if source is None:
            source = np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
        elif isinstance(source, (int, np.integer)):
            source = np.random.default_rng(int(source))
        self.source = source
        self.capacity = int(capacity)
        # One buffer+cursor per noise_bits value; ``None`` keys full-precision
        # float64 draws.  In practice a training run uses a single width.
        self._buffers = {}

    def _refill(self, noise_bits: Optional[int]) -> np.ndarray:
        if isinstance(self.source, LFSR):
            if noise_bits is None:
                raise ValueError("LFSR noise sources require an explicit noise_bits")
            return self.source.uniform((self.capacity,), noise_bits=noise_bits)
        if noise_bits is None:
            return self.source.random(self.capacity)
        levels = 1 << noise_bits
        if noise_bits <= 8:
            raw_dtype = np.uint8
        elif noise_bits <= 16:
            raw_dtype = np.uint16
        else:
            raw_dtype = np.uint64
        raw = self.source.integers(0, levels, size=self.capacity, dtype=raw_dtype)
        # k / 2**noise_bits is exact in float32 for noise_bits <= 24, and the
        # narrower dtype halves the memory traffic of the later add.
        out_dtype = np.float32 if noise_bits <= 24 else np.float64
        buffer = raw.astype(out_dtype)
        buffer /= out_dtype(levels)
        return buffer

    def _refill_readonly(self, noise_bits: Optional[int]) -> np.ndarray:
        buffer = np.asarray(self._refill(noise_bits))
        # Draws are served as views of this buffer; freezing it turns an
        # accidental in-place mutation (which would corrupt the stream for
        # every later draw from the same block) into an immediate error.
        buffer.flags.writeable = False
        return buffer

    def uniform(self, shape, noise_bits: Optional[int] = 8) -> np.ndarray:
        """Draw an array of quantized uniform noise values in ``[0, 1)``.

        Mirrors :meth:`LFSR.uniform` so :func:`draw_noise` can treat the pool
        as a drop-in noise source.  Served slices are read-only views of the
        pool buffer whenever the request fits in the current batch.
        """
        count = int(np.prod(shape)) if shape else 1
        state = self._buffers.get(noise_bits)
        if state is None:
            state = [self._refill_readonly(noise_bits), 0]
            self._buffers[noise_bits] = state
        buffer, cursor = state
        if count <= buffer.shape[0] - cursor:
            draws = buffer[cursor:cursor + count]
            state[1] = cursor + count
            return draws.reshape(shape)
        # Assemble large draws from whole refill blocks so the value stream
        # stays independent of how callers partition their requests.
        draws = np.empty(count, dtype=buffer.dtype)
        filled = 0
        while filled < count:
            available = buffer.shape[0] - cursor
            if available == 0:
                buffer = self._refill_readonly(noise_bits)
                cursor = 0
                available = buffer.shape[0]
            take = min(available, count - filled)
            draws[filled:filled + take] = buffer[cursor:cursor + take]
            cursor += take
            filled += take
        state[0] = buffer
        state[1] = cursor
        return draws.reshape(shape)

    def reset(self) -> None:
        """Drop all buffered noise (the underlying source state is kept)."""
        self._buffers.clear()


def _as_float_array(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def round_nearest(x) -> np.ndarray:
    """Round to the nearest integer, halves away from zero.

    ``np.round`` uses banker's rounding, which is not what fixed-point
    hardware typically implements, so we round half away from zero instead.
    """
    x = _as_float_array(x)
    return np.sign(x) * np.floor(np.abs(x) + 0.5)


def round_truncate(x) -> np.ndarray:
    """Truncate toward zero (drop the fractional bits of the magnitude)."""
    x = _as_float_array(x)
    return np.sign(x) * np.floor(np.abs(x))


def round_stochastic(x, rng=None, noise_bits: int = 8) -> np.ndarray:
    """Stochastically round toward one of the two neighbouring integers.

    A magnitude ``v`` with fractional part ``f`` is rounded up with
    probability ``f`` and down with probability ``1 - f`` (up to the
    resolution of ``noise_bits``), so that ``E[round(v)] == v`` when the noise
    has full precision (Theorem 1 of the paper).

    Parameters
    ----------
    x:
        Values scaled so that the quantization step is one unit.
    rng:
        Either a :class:`numpy.random.Generator`, an :class:`LFSR`, a
        :class:`NoisePool`, or ``None`` (a fresh default generator).
    noise_bits:
        Number of random bits added below the truncation point.  The paper's
        hardware uses 8-bit LFSR streams; its worked example in Figure 4 uses
        three bits (``q = 8``).
    """
    x = _as_float_array(x)
    noise = draw_noise(rng, x.shape, noise_bits)
    return np.sign(x) * np.floor(np.abs(x) + noise)


def draw_noise(rng, shape, noise_bits: Optional[int] = 8) -> np.ndarray:
    """Draw the additive stochastic-rounding noise for an array of ``shape``.

    Shared by the reference and fast quantization paths so that both consume
    the random stream identically (same source, same draw shape, same order),
    which is what makes the fast path seed-reproducible against the reference.
    """
    if rng is None:
        rng = np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
    if isinstance(rng, (LFSR, NoisePool)):
        return rng.uniform(shape, noise_bits=noise_bits)
    if noise_bits is None:
        return rng.random(shape)
    levels = 1 << noise_bits
    return rng.integers(0, levels, size=shape).astype(np.float64) / levels


def apply_rounding(x, mode: str, rng=None, noise_bits: int = 8) -> np.ndarray:
    """Dispatch to one of the rounding primitives by name.

    Parameters
    ----------
    x:
        Mantissa-scaled values (one unit per least significant bit).
    mode:
        One of ``"nearest"``, ``"truncate"`` or ``"stochastic"``.
    rng, noise_bits:
        Only used by stochastic rounding; see :func:`round_stochastic`.
    """
    if mode == RoundingMode.NEAREST:
        return round_nearest(x)
    if mode == RoundingMode.TRUNCATE:
        return round_truncate(x)
    if mode == RoundingMode.STOCHASTIC:
        return round_stochastic(x, rng=rng, noise_bits=noise_bits)
    raise ValueError(f"unknown rounding mode {mode!r}; expected one of {VALID_MODES}")
