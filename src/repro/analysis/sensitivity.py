"""BFP hyperparameter sensitivity sweeps (Figure 18).

Figure 18 varies the BFP mantissa bitwidth (2-5) and group size (8, 16, 32)
and reports the best validation accuracy of ResNet-18.  The sweep harness
here trains a model for every (g, m) configuration and collects the best
validation metric, using the same trainer/schedule machinery as the format
comparison so the configurations differ only in the BFP parameters.

A cheaper, training-free proxy is also provided
(:func:`quantization_snr_sweep`) that reports the quantization
signal-to-noise ratio of representative tensors on the same (g, m) grid; it
follows the same ordering (larger g or smaller m -> more error) and is what
the fast test-suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np

from ..core.bfp import BFPConfig, bfp_quantize

__all__ = ["SweepPoint", "quantization_snr", "quantization_snr_sweep", "accuracy_sweep", "sweep_table"]


@dataclass
class SweepPoint:
    """One (group size, mantissa bits) configuration and its measured value."""

    group_size: int
    mantissa_bits: int
    value: float


def quantization_snr(values: np.ndarray, mantissa_bits: int, group_size: int,
                     exponent_bits: int = 3) -> float:
    """Signal-to-quantization-noise ratio (dB) of BFP quantization."""
    values = np.asarray(values, dtype=np.float64)
    quantized = bfp_quantize(values, mantissa_bits=mantissa_bits, group_size=group_size,
                             exponent_bits=exponent_bits)
    noise = float(((values - quantized) ** 2).mean())
    signal = float((values ** 2).mean())
    if noise == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)


def quantization_snr_sweep(values: np.ndarray,
                           group_sizes: Iterable[int] = (8, 16, 32),
                           mantissa_bits: Iterable[int] = (2, 3, 4, 5)) -> List[SweepPoint]:
    """SNR of BFP quantization over the Figure 18 (g, m) grid."""
    points = []
    for group_size in group_sizes:
        for bits in mantissa_bits:
            points.append(SweepPoint(group_size, bits, quantization_snr(values, bits, group_size)))
    return points


def accuracy_sweep(train_fn: Callable[[BFPConfig], float],
                   group_sizes: Iterable[int] = (8, 16, 32),
                   mantissa_bits: Iterable[int] = (2, 3, 4, 5),
                   exponent_bits: int = 3) -> List[SweepPoint]:
    """Run a user-provided training function over the (g, m) grid.

    ``train_fn`` receives a :class:`BFPConfig` and returns the best validation
    metric achieved with it; the benchmark for Figure 18 passes a closure that
    trains the scaled ResNet-18 on the synthetic vision dataset.
    """
    points = []
    for group_size in group_sizes:
        for bits in mantissa_bits:
            config = BFPConfig(mantissa_bits=bits, group_size=group_size, exponent_bits=exponent_bits)
            points.append(SweepPoint(group_size, bits, float(train_fn(config))))
    return points


def sweep_table(points: List[SweepPoint]) -> Dict[Tuple[int, int], float]:
    """Convert a sweep to a ``(group_size, mantissa_bits) -> value`` mapping."""
    return {(point.group_size, point.mantissa_bits): point.value for point in points}
