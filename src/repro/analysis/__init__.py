"""Analysis utilities: exponent-spread statistics, sensitivity sweeps, report rendering."""

from .exponent_stats import (
    ExponentSpreadReport,
    difference_histogram,
    exponent_differences,
    exponent_spread_report,
)
from .reports import format_comparison, format_series, format_table
from .sensitivity import SweepPoint, accuracy_sweep, quantization_snr, quantization_snr_sweep, sweep_table

__all__ = [
    "exponent_differences",
    "difference_histogram",
    "exponent_spread_report",
    "ExponentSpreadReport",
    "SweepPoint",
    "quantization_snr",
    "quantization_snr_sweep",
    "accuracy_sweep",
    "sweep_table",
    "format_table",
    "format_series",
    "format_comparison",
]
