"""Exponent-spread statistics (Figure 6).

Figure 6 plots, for the weight, activation and gradient tensors of a layer in
mid-training, the distribution of the difference between each value's own
exponent and the BFP shared (maximum) exponent of its group, for group sizes
8, 16 and 32.  Large differences mean the value's mantissa is shifted far to
the right during alignment and loses bits -- the mechanism that makes
gradients (with their wide dynamic range) so sensitive to the mantissa width
and motivates stochastic rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from ..core.bfp import MIN_EXPONENT, compute_group_exponents, group_values

__all__ = ["exponent_differences", "difference_histogram", "ExponentSpreadReport", "exponent_spread_report"]


def exponent_differences(values: np.ndarray, group_size: int, axis: int = -1) -> np.ndarray:
    """Per-value difference between the group's shared exponent and the value's exponent.

    Zero values are excluded (they have no exponent).  The result is clipped
    below at 0 (a value cannot exceed its group maximum).
    """
    values = np.asarray(values, dtype=np.float64)
    groups, pad, _ = group_values(values, group_size, axis=axis)
    shared = compute_group_exponents(groups, exponent_bits=None)
    magnitudes = np.abs(groups)
    nonzero = magnitudes > 0
    if pad:
        # Padded positions are zero, so the nonzero mask already excludes them.
        pass
    # Per-value floor(log2 |x|) via exact frexp extraction (x = m * 2**e with
    # m in [0.5, 1) implies floor(log2 x) == e - 1), vectorized over the
    # whole tensor instead of a masked log2.
    exponents = np.full(groups.shape, MIN_EXPONENT, dtype=np.float64)
    raw = np.frexp(magnitudes)[1]
    exponents[nonzero] = raw[nonzero].astype(np.float64) - 1.0
    differences = shared[..., None] - exponents
    return np.clip(differences[nonzero], 0, None)


def difference_histogram(values: np.ndarray, group_size: int, max_difference: int = 16,
                         axis: int = -1) -> Dict[int, float]:
    """Histogram (percent frequency) of exponent differences, as plotted in Figure 6."""
    differences = exponent_differences(values, group_size, axis=axis)
    histogram: Dict[int, float] = {}
    total = differences.size
    if total == 0:
        return {bin_index: 0.0 for bin_index in range(max_difference + 1)}
    clipped = np.minimum(differences, max_difference)
    for bin_index in range(max_difference + 1):
        histogram[bin_index] = float((clipped == bin_index).sum() / total * 100.0)
    return histogram


@dataclass
class ExponentSpreadReport:
    """Summary statistics of one tensor's exponent spread at several group sizes."""

    tensor_name: str
    group_sizes: Sequence[int]
    mean_difference: Dict[int, float]
    truncated_fraction: Dict[int, float]
    histograms: Dict[int, Dict[int, float]]


def exponent_spread_report(tensor_name: str, values: np.ndarray,
                           group_sizes: Iterable[int] = (8, 16, 32),
                           mantissa_bits: int = 4) -> ExponentSpreadReport:
    """Compute Figure 6-style statistics for one tensor.

    ``truncated_fraction`` is the fraction of non-zero values whose exponent
    difference is at least ``mantissa_bits`` -- these values lose *all* their
    mantissa bits during alignment (the failure mode discussed in
    Section III-C).
    """
    group_sizes = list(group_sizes)
    mean_difference: Dict[int, float] = {}
    truncated_fraction: Dict[int, float] = {}
    histograms: Dict[int, Dict[int, float]] = {}
    for group_size in group_sizes:
        differences = exponent_differences(values, group_size)
        mean_difference[group_size] = float(differences.mean()) if differences.size else 0.0
        truncated_fraction[group_size] = (
            float((differences >= mantissa_bits).mean()) if differences.size else 0.0
        )
        histograms[group_size] = difference_histogram(values, group_size)
    return ExponentSpreadReport(
        tensor_name=tensor_name,
        group_sizes=group_sizes,
        mean_difference=mean_difference,
        truncated_fraction=truncated_fraction,
        histograms=histograms,
    )
