"""Plain-text rendering of the reproduced tables and figure series.

The benchmarks print their results through these helpers so every experiment
produces the same row/column layout as the corresponding table or figure in
the paper, making the paper-vs-measured comparison in EXPERIMENTS.md easy to
regenerate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_comparison"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None, precision: int = 2) -> str:
    """Render rows as a fixed-width text table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        if cell is None:
            return "N/A"
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Mapping[object, float], precision: int = 2) -> str:
    """Render a one-dimensional series (e.g. an accuracy-vs-epoch curve)."""
    points = ", ".join(f"{key}: {value:.{precision}f}" for key, value in values.items())
    return f"{name}: {points}"


def format_comparison(headers: Sequence[str], measured: Mapping[str, float],
                      reference: Mapping[str, float], title: Optional[str] = None,
                      precision: int = 2) -> str:
    """Render a measured-vs-paper comparison with one row per key."""
    rows: List[List[object]] = []
    for key in measured:
        rows.append([key, measured[key], reference.get(key)])
    return format_table(list(headers), rows, title=title, precision=precision)
