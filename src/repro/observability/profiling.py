"""Profiling hooks for the hot kernels and trainers.

The hot paths (``core/kernels.py`` quantize kernels, ``nn/functional.py``
GEMM/im2col) each hold a module-level ``_PROFILER`` global that is ``None``
by default; the instrumented functions check ``if profiler is not None``
-- one global load and one branch, zero allocations -- so the disabled
path is the pre-existing code path.  :func:`install` flips those globals
to a shared :class:`KernelProfiler`; :func:`uninstall` restores ``None``.

The imports happen inside the functions, not at module level: kernels must
never import observability (the dependency points one way only), and this
module must not drag the kernel modules in just because metrics are used.
"""

from __future__ import annotations

import threading
from typing import Optional

from .metrics import MetricsRegistry, log_buckets

__all__ = ["KernelProfiler", "install", "uninstall"]

# Kernel calls run ~1 us .. ~1 s; finer default range than request latency.
_KERNEL_BUCKETS_MS = log_buckets(1e-3, 1e4, per_decade=16)


class KernelProfiler:
    """Records per-kernel call counts, wall time, and element throughput.

    One instance is shared by every instrumented module; ``record`` is the
    only entry point and is safe to call from any thread.  Metrics land in
    the owning registry as ``kernel_calls_total`` / ``kernel_seconds_total``
    / ``kernel_elements_total`` counters and a ``kernel_call_ms`` histogram,
    all labelled ``{kernel=<name>}``.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._lock = threading.Lock()
        self._cache: dict = {}  # guarded-by: _lock

    def _metrics(self, kernel: str):
        # Double-checked locking: dict.get is atomic under the GIL, and a
        # stale miss simply retries under the lock.
        metrics = self._cache.get(kernel)  # repro-lint: disable=RL004 -- lock-free fast path of double-checked locking
        if metrics is None:
            with self._lock:
                metrics = self._cache.get(kernel)
                if metrics is None:
                    metrics = (
                        self.registry.counter(
                            "kernel_calls_total",
                            help="Instrumented kernel invocations",
                            kernel=kernel),
                        self.registry.counter(
                            "kernel_seconds_total",
                            help="Wall seconds inside instrumented kernels",
                            kernel=kernel),
                        self.registry.counter(
                            "kernel_elements_total",
                            help="Array elements processed by kernels",
                            kernel=kernel),
                        self.registry.histogram(
                            "kernel_call_ms",
                            help="Per-call kernel wall time (ms)",
                            buckets=_KERNEL_BUCKETS_MS, kernel=kernel),
                    )
                    self._cache[kernel] = metrics
        return metrics

    def record(self, kernel: str, seconds: float, elements: int = 0) -> None:
        calls, total_seconds, total_elements, call_ms = self._metrics(kernel)
        calls.inc()
        total_seconds.inc(seconds)
        if elements:
            total_elements.inc(elements)
        call_ms.observe(seconds * 1e3)


def install(registry: MetricsRegistry) -> KernelProfiler:
    """Point every instrumented module's ``_PROFILER`` at one profiler."""
    from ..core import kernels
    from ..nn import functional

    profiler = KernelProfiler(registry)
    kernels.set_profiler(profiler)
    functional.set_profiler(profiler)
    return profiler


def uninstall() -> None:
    """Restore the zero-overhead disabled path in every hooked module."""
    from ..core import kernels
    from ..nn import functional

    kernels.set_profiler(None)
    functional.set_profiler(None)
