"""Unified observability: metrics registry, request tracing, kernel hooks.

One module-level gate controls everything::

    from repro import observability

    observability.set_enabled(True, sample_rate=0.1)   # metrics + tracing
    ... serve traffic ...
    print(observability.registry().render_prometheus())  # scrape
    observability.tracer().export("trace.json")          # view in Perfetto
    observability.set_enabled(False)

While disabled (the default) the hot paths take their pre-existing code
path: the kernel hooks are a ``None``-check on a module global (no
allocations -- see ``tests/observability/test_profiling.py``), servers
skip span recording, and only the always-on bounded latency histograms
(which replace the old sample deques, strictly less memory) are updated.

Components -- usable standalone, independent of the global gate:

* :mod:`.metrics` -- thread-safe :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket log-scale :class:`LatencyHistogram`\\ s
  (p50/p95/p99 in O(buckets) memory, no retained samples), with JSON
  snapshots, Prometheus text exposition, and additive cross-process
  *deltas* (what the cluster workers piggyback on their control pipe).
* :mod:`.tracing` -- sampled per-request span timelines exported as
  Chrome trace-event JSON (Perfetto-viewable), covering
  submit/admit/queue/batch-assemble/transport/compute/respond.
* :mod:`.profiling` -- the kernel/trainer hook installer.
"""

from __future__ import annotations

import threading
from typing import Optional

from . import metrics, profiling, tracing
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    log_buckets,
    validate_prometheus_text,
)
from .profiling import KernelProfiler
from .tracing import (
    GENERATION_STAGES,
    PIPELINE_STAGES,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "enabled",
    "set_enabled",
    "set_sample_rate",
    "registry",
    "tracer",
    "active_tracer",
    "reset",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Tracer",
    "KernelProfiler",
    "PIPELINE_STAGES",
    "GENERATION_STAGES",
    "validate_prometheus_text",
    "validate_chrome_trace",
]

_gate_lock = threading.Lock()
_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer(sample_rate=1.0)
_profiler: Optional[KernelProfiler] = None


def enabled() -> bool:
    """Whether the observability gate is on (metrics + tracing + hooks)."""
    return _enabled


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (exists even while disabled)."""
    return _registry


def tracer() -> Tracer:
    """The process-wide tracer (exists even while disabled)."""
    return _tracer


def active_tracer() -> Optional[Tracer]:
    """The tracer if the gate is on and tracing is armed, else ``None``.

    The serving hot paths call this once per request/batch and skip all
    span work on ``None`` -- the single dynamic check tracing costs.
    """
    if _enabled and _tracer.sample_rate > 0.0:
        return _tracer
    return None


def set_enabled(flag: bool, *, sample_rate: Optional[float] = None) -> bool:
    """Flip the global gate; returns the previous state.

    Enabling installs the kernel profiling hooks and arms the tracer
    (``sample_rate`` sets the fraction of requests that get a full span
    timeline; batch-level spans are always recorded while armed).
    Disabling restores every hook to the zero-overhead ``None`` path.
    """
    global _enabled, _profiler
    with _gate_lock:
        previous = _enabled
        if sample_rate is not None:
            set_sample_rate(sample_rate)
        if flag and not _enabled:
            _profiler = profiling.install(_registry)
            _enabled = True
        elif not flag and _enabled:
            _enabled = False
            _profiler = None
            profiling.uninstall()
    return previous


def set_sample_rate(sample_rate: float) -> None:
    """Set the fraction of requests that get a full span timeline."""
    if not 0.0 <= sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
    _tracer.sample_rate = float(sample_rate)


def reset() -> None:
    """Swap in a fresh registry and tracer (test isolation helper).

    Keeps the enabled/disabled state; if enabled, the kernel hooks are
    re-pointed at the fresh registry.
    """
    global _registry, _tracer, _profiler
    with _gate_lock:
        sample_rate = _tracer.sample_rate
        _registry = MetricsRegistry()
        _tracer = Tracer(sample_rate=sample_rate)
        if _enabled:
            _profiler = profiling.install(_registry)
