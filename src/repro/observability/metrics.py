"""Thread-safe metrics primitives: counters, gauges, log-bucket histograms.

The serving tier needs latency percentiles over millions of requests
without retaining samples.  :class:`LatencyHistogram` keeps a fixed set of
geometrically-spaced buckets (``per_decade`` buckets per decade, so the
bucket width bounds the relative quantile error at ``10**(1/per_decade)-1``
~= 15% worst-case and far less in practice with intra-bucket
interpolation), plus exact ``count``/``sum``/``min``/``max`` so the mean is
exact.  Histograms merge by adding bucket counts, which is what makes
cross-process aggregation (worker deltas piggybacked on the control pipe)
and windowless long-running stats possible in O(buckets) memory.

:class:`MetricsRegistry` is the process-wide container: get-or-create
metrics by ``(name, labels)``, snapshot everything as JSON-ready dicts,
render the Prometheus text exposition format, and ship/apply *deltas* --
each metric remembers what was last collected, so a worker can send only
the increments since its previous reply and the parent applies them
additively (a respawned worker restarts from zero and its deltas keep
adding up; nothing is lost or double-counted).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "validate_prometheus_text",
]

LabelItems = Tuple[Tuple[str, str], ...]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(lo: float = 1e-2, hi: float = 1e5,
                per_decade: int = 16) -> Tuple[float, ...]:
    """Geometric bucket upper bounds from ``lo`` to at least ``hi``.

    Consecutive bounds differ by the factor ``10**(1/per_decade)``; a
    quantile estimated by intra-bucket interpolation is therefore within
    one bucket width (``factor - 1`` relative) of the exact sample
    percentile.  The defaults cover 10 us .. 100 s when the unit is
    milliseconds, in 112 buckets.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    steps = int(math.ceil(round(math.log10(hi / lo) * per_decade, 9)))
    return tuple(lo * 10.0 ** (i / per_decade) for i in range(steps + 1))


DEFAULT_LATENCY_BUCKETS_MS = log_buckets()


def _check_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_items(labels: dict) -> LabelItems:
    for key in labels:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"'
                    for key, value in items)
    return "{" + body + "}"


class _Metric:
    """Common identity (name + sorted label items) and lock."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        self.name = _check_name(name)
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    @property
    def key(self) -> Tuple[str, LabelItems]:
        return (self.name, self.labels)


class Counter(_Metric):
    """Monotonically increasing value (use ``*_total`` names)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = (), help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0  # guarded-by: _lock
        self._collected = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def collect_delta(self) -> Optional[float]:
        with self._lock:
            delta = self._value - self._collected
            self._collected = self._value
        return delta if delta else None

    def apply_delta(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value}


class Gauge(_Metric):
    """A value that can go up and down (queue depth, workers alive)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = (), help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0  # guarded-by: _lock
        self._collected: Optional[float] = None  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def collect_delta(self) -> Optional[float]:
        # Gauges are last-write-wins: ship the value whenever it changed.
        with self._lock:
            if self._value == self._collected:
                return None
            self._collected = self._value
            return self._value

    def apply_delta(self, value: float) -> None:
        self.set(value)

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value}


class LatencyHistogram(_Metric):
    """Fixed log-scale buckets: p50/p95/p99 without retaining samples."""

    kind = "histogram"

    def __init__(self, name: str = "latency_ms", labels: LabelItems = (),
                 help: str = "",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS):
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if len(bounds) < 2 or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be at least 2 increasing bounds")
        self.bounds = bounds
        # counts has one extra slot: the overflow bucket above bounds[-1].
        self._counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._min = math.inf  # guarded-by: _lock
        self._max = -math.inf  # guarded-by: _lock
        self._collected_counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self._collected_sum = 0.0  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect_right(self.bounds, value)] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else float("nan")

    # ------------------------------------------------------------------ #
    def _bucket_edges_locked(self, index: int) -> Tuple[float, float]:
        """(lower, upper) value range of bucket ``index``, clamped to the
        observed min/max so interpolation never extrapolates."""
        if index == 0:
            lo, hi = -math.inf, self.bounds[0]
        elif index == len(self.bounds):
            lo, hi = self.bounds[-1], math.inf
        else:
            lo, hi = self.bounds[index - 1], self.bounds[index]
        lo = max(lo, self._min)
        hi = min(hi, self._max)
        return lo, max(hi, lo)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by linear interpolation in-bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return float("nan")
            target = max(q * self._count, 1.0)
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if not bucket_count:
                    continue
                if cumulative + bucket_count >= target:
                    lo, hi = self._bucket_edges_locked(index)
                    fraction = (target - cumulative) / bucket_count
                    return lo + (hi - lo) * fraction
                cumulative += bucket_count
            return self._max  # unreachable unless float fuzz; be safe

    def percentiles(self, qs: Sequence[float] = (0.50, 0.95, 0.99),
                    ) -> Tuple[float, ...]:
        return tuple(self.quantile(q) for q in qs)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "name": self.name, "type": self.kind,
                "labels": dict(self.labels),
                "count": self._count, "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "counts": list(self._counts),
            }

    def merge_dict(self, payload: dict) -> None:
        counts = payload["counts"]
        with self._lock:
            if len(counts) != len(self._counts):
                raise ValueError(
                    f"histogram layout mismatch: {len(counts)} buckets vs "
                    f"{len(self._counts)}")
            for index, extra in enumerate(counts):
                self._counts[index] += extra
            self._count += payload["count"]
            self._sum += payload["sum"]
            if payload.get("min") is not None:
                self._min = min(self._min, payload["min"])
            if payload.get("max") is not None:
                self._max = max(self._max, payload["max"])

    def merge(self, other: "LatencyHistogram") -> None:
        self.merge_dict(other.to_dict())

    def collect_delta(self) -> Optional[dict]:
        with self._lock:
            delta_count = self._count - sum(self._collected_counts)
            if not delta_count:
                return None
            counts = [now - then for now, then
                      in zip(self._counts, self._collected_counts)]
            delta = {
                "count": delta_count,
                "sum": self._sum - self._collected_sum,
                "min": self._min, "max": self._max,
                "counts": counts,
            }
            self._collected_counts = list(self._counts)
            self._collected_sum = self._sum
        return delta

    def apply_delta(self, delta: dict) -> None:
        self.merge_dict(delta)


class MetricsRegistry:
    """Process-wide, thread-safe container of named metrics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], _Metric] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, labels: dict, help: str,
                       **kwargs) -> _Metric:
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], help=help, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
                  **labels) -> LatencyHistogram:
        return self._get_or_create(LatencyHistogram, name, labels, help,
                                   buckets=buckets)

    def get(self, name: str, **labels) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get((name, _label_items(labels)))

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-ready dump of every metric (histograms include buckets)."""
        return {"metrics": [metric.to_dict() for metric in self.metrics()]}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        by_name: Dict[str, List[_Metric]] = {}
        for metric in self.metrics():
            by_name.setdefault(metric.name, []).append(metric)
        for name in sorted(by_name):
            family = by_name[name]
            help_text = next((m.help for m in family if m.help), "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family[0].kind}")
            for metric in family:
                if isinstance(metric, LatencyHistogram):
                    lines.extend(self._render_histogram(metric))
                else:
                    lines.append(f"{name}{_render_labels(metric.labels)} "
                                 f"{_format_value(metric.value)}")
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _render_histogram(hist: LatencyHistogram) -> List[str]:
        state = hist.to_dict()
        lines = []
        cumulative = 0
        for bound, bucket_count in zip(hist.bounds, state["counts"]):
            cumulative += bucket_count
            items = hist.labels + (("le", _format_value(bound)),)
            lines.append(f"{hist.name}_bucket{_render_labels(items)} "
                         f"{cumulative}")
        items = hist.labels + (("le", "+Inf"),)
        lines.append(f"{hist.name}_bucket{_render_labels(items)} "
                     f"{state['count']}")
        lines.append(f"{hist.name}_sum{_render_labels(hist.labels)} "
                     f"{_format_value(state['sum'])}")
        lines.append(f"{hist.name}_count{_render_labels(hist.labels)} "
                     f"{state['count']}")
        return lines

    # ------------------------------------------------------------------ #
    def collect_delta(self) -> Optional[dict]:
        """Increments since the last collect, or ``None`` if nothing moved.

        The payload is small, picklable, and additive: apply it to any
        registry (usually in another process) with :meth:`apply_delta`.
        """
        entries = []
        for metric in self.metrics():
            delta = metric.collect_delta()
            if delta is None:
                continue
            entries.append((metric.name, metric.labels, metric.kind, delta))
        return {"entries": entries} if entries else None

    def apply_delta(self, payload: dict,
                    extra_labels: Optional[dict] = None) -> None:
        """Apply a :meth:`collect_delta` payload, optionally re-labelled.

        ``extra_labels`` (e.g. ``{"shard": "0", "model": "cnn"}``) are
        merged into every entry's labels so a parent can aggregate many
        workers into one registry with a per-worker breakdown.
        """
        extra = _label_items(extra_labels or {})
        for name, labels, kind, delta in payload["entries"]:
            merged = dict(labels)
            merged.update(extra)
            if kind == "counter":
                self.counter(name, **merged).apply_delta(delta)
            elif kind == "gauge":
                self.gauge(name, **merged).apply_delta(delta)
            elif kind == "histogram":
                self.histogram(name, **merged).apply_delta(delta)
            else:
                raise ValueError(f"unknown metric kind {kind!r}")


# ---------------------------------------------------------------------- #
# Schema validation (shared by tests and the CI perf-smoke step).

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$")
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')


def validate_prometheus_text(text: str) -> int:
    """Validate Prometheus text exposition; returns the sample count.

    Checks line syntax (HELP/TYPE comments, sample lines with optional
    labels), parseable float values, and -- for families declared
    ``histogram`` -- that the ``_bucket`` series is cumulative-monotone per
    label set with a ``+Inf`` bucket equal to ``_count``.  Raises
    ``ValueError`` on the first violation.
    """
    types: Dict[str, str] = {}
    buckets: Dict[Tuple[str, LabelItems], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, LabelItems], float] = {}
    samples = 0
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {line_no}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {line_no}: bad TYPE {line!r}")
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_no}: malformed sample {line!r}")
        label_text = match.group("labels")
        items: List[Tuple[str, str]] = []
        if label_text:
            for pair in label_text.split(","):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ValueError(
                        f"line {line_no}: malformed label {pair!r}")
                key, _, value = pair.partition("=")
                items.append((key, value[1:-1]))
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {line_no}: unparseable value {raw_value!r}") from None
        samples += 1
        name = match.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)]
            if name.endswith(suffix) and types.get(base) == "histogram":
                labels = tuple(sorted(i for i in items if i[0] != "le"))
                if suffix == "_bucket":
                    le = dict(items).get("le")
                    if le is None:
                        raise ValueError(
                            f"line {line_no}: histogram bucket without le")
                    bound = math.inf if le == "+Inf" else float(le)
                    buckets.setdefault((base, labels), []).append(
                        (bound, value))
                elif suffix == "_count":
                    counts[(base, labels)] = value
                break
    for (base, labels), series in buckets.items():
        series.sort(key=lambda item: item[0])
        cumulative = [count for _, count in series]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            raise ValueError(
                f"histogram {base}{dict(labels)}: buckets not cumulative")
        if not series or not math.isinf(series[-1][0]):
            raise ValueError(f"histogram {base}{dict(labels)}: no +Inf bucket")
        total = counts.get((base, labels))
        if total is not None and total != series[-1][1]:
            raise ValueError(
                f"histogram {base}{dict(labels)}: +Inf bucket "
                f"{series[-1][1]} != _count {total}")
    return samples
