"""Per-request tracing: sampled span timelines as Chrome trace events.

Spans are recorded as *complete* (``"ph": "X"``) events in the Chrome
trace-event JSON format, so an exported file loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` and renders the request
pipeline -- submit, admit, queue, batch-assemble, transport, compute,
respond -- as nested per-thread/per-process timelines.

Timestamps come from ``time.monotonic()``.  On Linux that is
``CLOCK_MONOTONIC``, which is system-wide: spans recorded inside a worker
process line up on the same timeline as the parent's, which is exactly
what makes the cross-process transport/compute breakdown readable.

Sampling is deterministic (every ``round(1/rate)``-th sampled request gets
a trace id) so a fixed request count yields a fixed number of traces.
Request-level spans are recorded only for sampled requests; batch-level
spans (assembly, compute, transport) are recorded whenever tracing is
armed, since there are few of them.  The event buffer is bounded --
long-running servers keep the most recent ``max_events`` spans.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

__all__ = ["Tracer", "validate_chrome_trace", "PIPELINE_STAGES",
           "GENERATION_STAGES"]

# The stage names the serving pipeline emits, in order.  Exported for
# tests and schema validation ("did the trace cover the pipeline?").
PIPELINE_STAGES = ("submit", "admit", "queue", "batch-assemble",
                   "transport", "compute", "respond")

# The continuous-batching generation tier's stages: one ``prefill`` span per
# admitted sequence (encoder + cross-attention K/V projection), one
# ``decode_step`` span per batched incremental step.  Kept separate from
# PIPELINE_STAGES because classifier-serving traces are validated against
# the full pipeline tuple and never emit these.
GENERATION_STAGES = ("prefill", "decode_step")


class Tracer:
    """Bounded, thread-safe collector of Chrome trace events."""

    def __init__(self, sample_rate: float = 1.0, max_events: int = 100_000,
                 clock=time.monotonic):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self.clock = clock
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=int(max_events))  # guarded-by: _lock
        self._seen = 0  # guarded-by: _lock
        self._next_trace_id = 1  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    @property
    def armed(self) -> bool:
        return self.sample_rate > 0.0

    def sample(self) -> Optional[int]:
        """Sampling decision for one request: a trace id, or ``None``.

        Deterministic: at rate ``r`` every ``round(1/r)``-th call gets an
        id, so traces are evenly spread through the request stream.
        """
        if self.sample_rate <= 0.0:
            return None
        with self._lock:
            self._seen += 1
            interval = max(int(round(1.0 / self.sample_rate)), 1)
            if (self._seen - 1) % interval:
                return None
            trace_id = self._next_trace_id
            self._next_trace_id += 1
        return trace_id

    # ------------------------------------------------------------------ #
    def add_event(self, name: str, start_s: float, duration_s: float, *,
                  category: str = "serving", args: Optional[dict] = None,
                  pid: Optional[int] = None, tid: Optional[int] = None) -> None:
        """Record one complete span (start and duration in clock seconds)."""
        event = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start_s * 1e6,          # microseconds, trace-event convention
            "dur": max(duration_s, 0.0) * 1e6,
            "pid": os.getpid() if pid is None else int(pid),
            "tid": threading.get_ident() if tid is None else int(tid),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    @contextmanager
    def span(self, name: str, *, category: str = "serving",
             args: Optional[dict] = None):
        """Context manager recording the enclosed block as one span."""
        start = self.clock()
        try:
            yield
        finally:
            self.add_event(name, start, self.clock() - start,
                           category=category, args=args)

    def extend(self, events: Sequence[dict]) -> None:
        """Absorb foreign events (e.g. drained from a worker process)."""
        with self._lock:
            for event in events:
                if "name" not in event or "ts" not in event:
                    raise ValueError(f"malformed trace event: {event!r}")
                self._events.append(event)

    # ------------------------------------------------------------------ #
    def events(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    def drain(self) -> List[dict]:
        """Pop and return all buffered events (worker piggyback path)."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._seen = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # ------------------------------------------------------------------ #
    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        events = sorted(self.events(), key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path) -> str:
        """Write the trace to ``path``; open the file in Perfetto to view."""
        payload = self.to_chrome()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return str(path)


def validate_chrome_trace(payload: dict,
                          require_stages: Sequence[str] = ()) -> int:
    """Validate a Chrome trace-event object; returns the event count.

    Checks the container shape (``traceEvents`` list + ``displayTimeUnit``)
    and, per event, the complete-event schema this module emits: non-empty
    string ``name``, ``ph == "X"``, numeric non-negative ``ts``/``dur``,
    integer ``pid``/``tid``.  ``require_stages`` additionally demands that
    every named stage appears at least once (the "all pipeline stages
    present" acceptance check).
    Raises ``ValueError`` on the first violation.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace must be an object with a traceEvents list")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    seen: Dict[str, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index}: not an object")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"event {index}: missing name")
        if event.get("ph") != "X":
            raise ValueError(f"event {index} ({name}): ph must be 'X'")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"event {index} ({name}): bad {key}={value!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(
                    f"event {index} ({name}): missing integer {key}")
        seen[name] = max(seen.get(name, 0.0), float(event["dur"]))
    missing = [stage for stage in require_stages if stage not in seen]
    if missing:
        raise ValueError(f"trace missing pipeline stages: {missing} "
                         f"(have {sorted(seen)})")
    return len(events)
