"""Setup shim so the package installs in offline environments without the
``wheel`` package (legacy ``pip install -e . --no-use-pep517`` path)."""

from setuptools import setup

setup()
